"""The protocol-backend interface every MPC substrate implements.

A :class:`ProtocolBackend` bundles everything that varies between MPC
substrates while the rest of the framework (tensors, layers, models,
training, serving, benchmarks) stays protocol-agnostic:

* the **share type** — how a plaintext ring tensor splits into
  ``n_parties`` shares, how those reconstruct, and how a public-scalar
  product is rescaled share-locally (:meth:`share_secret`,
  :meth:`reconstruct`, :meth:`truncate_values`);
* the **interactive ops** — multiplication, comparison and truncation
  protocols with full SimClock cost accounting
  (:meth:`matmul` / :meth:`elementwise_mul` / :meth:`compare_const` /
  :meth:`truncate`);
* the **correlated-randomness source** — whether the substrate needs a
  dealer (Beaver triplets) or derives its randomness from pairwise PRG
  keys (:attr:`needs_dealer`).

The conformance contract: every backend must pass the differential
sweep in ``repro.audit.conformance`` (all eight models vs the plain
baselines, within the documented fixed-point tolerances) and the
chi-square wire-view auditor — nothing a backend puts on a server link
may be distinguishable from uniform ring noise.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.tensor import SharedTensor


class ProtocolBackend:
    """Abstract MPC substrate; see module docstring for the contract."""

    #: registry key and the label used by ``protocol.*`` telemetry
    name: str = "abstract"
    #: number of computing servers the substrate runs on
    n_parties: int = 2
    #: whether a trusted dealer provisions correlated randomness
    #: (Beaver triplets / comparison bundles) in the offline phase
    needs_dealer: bool = True
    #: the two parties that execute the 2-party comparison core (and
    #: therefore receive the dealer's comparison material)
    compare_parties: tuple[int, int] = (0, 1)

    # --- share algebra (pure, no clock) ------------------------------------

    def share_secret(self, secret: np.ndarray, rng) -> Sequence[np.ndarray]:
        """Split ``secret`` into ``n_parties`` indexable ring shares."""
        raise NotImplementedError

    def reconstruct(self, shares: Sequence[np.ndarray]) -> np.ndarray:
        """Inverse of :meth:`share_secret`."""
        raise NotImplementedError

    def truncate_values(
        self, shares: Sequence[np.ndarray], bits: int
    ) -> tuple[np.ndarray, ...]:
        """Share-local probabilistic truncation by ``bits`` (no wire)."""
        raise NotImplementedError

    # --- client upload accounting ------------------------------------------

    def upload_nbytes(self, nbytes: int) -> int:
        """Bytes the client uploads *per server* when sharing ``nbytes``."""
        raise NotImplementedError

    def upload_payloads(self, shares) -> tuple:
        """Per-server wire payloads for the transcript recorder."""
        raise NotImplementedError

    # --- interactive protocols (full cost accounting on ctx) ---------------

    def matmul(
        self,
        ctx,
        x: "SharedTensor",
        y: "SharedTensor",
        m: int,
        k: int,
        n: int,
        both_fixed: bool,
        *,
        label: str,
        truncate_result: bool,
    ) -> "SharedTensor":
        raise NotImplementedError

    def elementwise_mul(
        self, ctx, x: "SharedTensor", y: "SharedTensor", *, label: str
    ) -> "SharedTensor":
        raise NotImplementedError

    def compare_const(
        self, ctx, x: "SharedTensor", threshold: float, *, label: str
    ) -> "SharedTensor":
        raise NotImplementedError

    def truncate(self, ctx, x: "SharedTensor", *, label: str) -> "SharedTensor":
        raise NotImplementedError

    def softmax(self, ctx, x: "SharedTensor", *, label: str) -> "SharedTensor":
        """Row-wise softmax of a (b, d) fixed-point tensor.

        The default is the generic Morse-STF-style composition in
        :mod:`repro.mpc.softmax` — a tournament row max, clamp,
        exp-by-squaring and Newton normalization built purely from this
        backend's :meth:`elementwise_mul` / :meth:`compare_const`, so
        every registered substrate supports it out of the box; backends
        with a native softmax protocol may override.
        """
        from repro.mpc.softmax import softmax_protocol

        return softmax_protocol(ctx, x, label=label)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ProtocolBackend {self.name} ({self.n_parties}-party)>"
