"""3-party replicated secret sharing (ABY3-style), dealer-free.

A value ``x`` splits into three additive shares ``x = x0 + x1 + x2``
and party ``p`` holds the pair ``(x_p, x_{p+1})`` (indices mod 3).
Because every share is held by two parties, multiplication needs no
Beaver triplets:

* **mul** — each party computes the local cross-term
  ``z_p = x_p * (y_p + y_{p+1}) + x_{p+1} * y_p`` (the nine share
  products are covered exactly once across the three parties), masks it
  with a PRG-derived zero-share ``alpha_p`` (``sum alpha = 0``), and
  sends ``c_p = z_p + alpha_p`` to party ``p-1`` — one resharing round,
  after which each party again holds a replicated pair of the product.
  For matmul the cross-term fuses into a single ``(m,2k)x(2k,n)`` ring
  GEMM ``[x_p | x_{p+1}] @ [(y_p + y_{p+1}) ; y_p]``, so the profiler's
  GPU placement applies unchanged.
* **truncation** — probabilistic pair truncation: party 0 folds its
  replicated pair and truncates ``(x0 + x1)`` as the positive share of
  a 2-sharing, parties 1 and 2 truncate ``x2`` as the negative share;
  one alpha-masked message (0 -> 2) restores the replicated layout.
  Same error bound as the SecureML 2-party rescale (off by at most one
  ulp with overwhelming probability).
* **comparison** — folded to the existing 2-party comparison core
  between parties 0 (``x0 + x1``) and 2 (``x2``); the indicator result
  is lifted back to a replicated 3-sharing with zero-share masking.

Every payload that reaches a server link is masked by zero-shares drawn
from per-op-stream PRG generators that persist across invocations, so
every batch gets fresh masks and the chi-square wire auditor sees
uniform ring noise, while an identical op sequence (replay, the
determinism tests) redraws the identical mask sequence.
"""

from __future__ import annotations

import numpy as np

from repro.comm.wire import blob_frame_sizes, frame_sizes
from repro.core import ops as core_ops
from repro.core.ops import _chain, _deps, _set_chain
from repro.core.tensor import SharedTensor
from repro.fixedpoint.ring import RING_DTYPE, ring_add, ring_mul, ring_neg
from repro.fixedpoint.truncation import truncate_share
from repro.mpc.comparison import emulated_ge_const, secure_ge_const
from repro.protocols.base import ProtocolBackend


def _send_array(ctx, link, src, dst, tag, payload, deps, label):
    """One masked-array message, framed when the wire codec is on.

    Rep3 never sends two messages on the same directed link in the same
    round (the resharing ring rotates one message per link), so
    ``coalesce_rounds`` has nothing to pack here — it only implies framed
    accounting, keeping cross-backend byte comparisons on one codec.
    Returns the delivery task after recording the transcript tap.
    """
    if ctx.config.wire_frames or ctx.config.coalesce_rounds:
        sizes = frame_sizes(tag, payload)
        task = link.send_framed(src, dst, sizes, deps=deps, label=label)
        wire_nbytes = sizes.nbytes
    else:
        task = link.send(src, dst, payload.nbytes, deps=deps, label=label)
        wire_nbytes = payload.nbytes
    ctx.record_wire(src, dst, tag, payload, nbytes=wire_nbytes)
    return task


def rep3_share(secret: np.ndarray, rng) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split ``secret`` into three additive ring shares."""
    s0 = rng.integers(0, 2**64, size=secret.shape, dtype=np.uint64)
    s1 = rng.integers(0, 2**64, size=secret.shape, dtype=np.uint64)
    s2 = ring_add(s0, s1)
    ring_neg(s2, out=s2)
    ring_add(secret, s2, out=s2)
    return (s0, s1, s2)


def rep3_reconstruct(shares) -> np.ndarray:
    return ring_add(ring_add(shares[0], shares[1]), shares[2])


def rep3_cross_term(i: int, x_shares, y_shares) -> np.ndarray:
    """Party ``i``'s local elementwise cross-term of the product."""
    j = (i + 1) % 3
    return ring_add(
        ring_mul(x_shares[i], ring_add(y_shares[i], y_shares[j])),
        ring_mul(x_shares[j], y_shares[i]),
    )


def rep3_zero_shares(shape, rng) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Three pseudo-random ring tensors summing to zero."""
    a0 = rng.integers(0, 2**64, size=shape, dtype=np.uint64)
    a1 = rng.integers(0, 2**64, size=shape, dtype=np.uint64)
    a2 = ring_add(a0, a1)
    ring_neg(a2, out=a2)
    return (a0, a1, a2)


class Rep3Backend(ProtocolBackend):
    name = "rep3"
    n_parties = 3
    needs_dealer = False
    compare_parties = (0, 2)

    # --- share algebra ------------------------------------------------------

    def share_secret(self, secret, rng):
        return rep3_share(secret, rng)

    def reconstruct(self, shares):
        return rep3_reconstruct(shares)

    def truncate_values(self, shares, bits):
        # Pair truncation of the fold (s0 + s1, s2); pure algebra for the
        # wire-free public-scalar rescale (no re-randomization needed —
        # these values never leave the parties that computed them).
        fold = ring_add(shares[0], shares[1])
        t_a = truncate_share(fold, bits, 0, out=fold)
        t_b = truncate_share(shares[2], bits, 1)
        return (t_a, np.zeros(shares[0].shape, dtype=RING_DTYPE), t_b)

    # --- client upload accounting -------------------------------------------

    def upload_nbytes(self, nbytes):
        # each server receives its replicated pair: two shares
        return 2 * nbytes

    def upload_payloads(self, shares):
        return tuple((shares[i], shares[(i + 1) % 3]) for i in range(3))

    # --- zero-share PRG streams ---------------------------------------------

    def _zero_shares(self, ctx, label, shape):
        if ctx.config.fresh_triplets:
            seq = getattr(ctx, "_rep3_seq", 0)
            ctx._rep3_seq = seq + 1
            return rep3_zero_shares(shape, ctx.seeds.generator(f"rep3-{seq}"))
        # One persistent generator per op-stream label, advancing across
        # invocations: batch k of a stream draws fresh masks, but the k-th
        # draw is identical in any rerun of the same op sequence.  A
        # restarting stream would repeat alphas across batches — paired
        # with the label-seeded comparison output mask that makes the
        # lift payloads near-identical batch to batch, which the wire
        # auditor's pooled byte histogram rightly flags.
        streams = getattr(ctx, "_rep3_streams", None)
        if streams is None:
            streams = ctx._rep3_streams = {}
        gen = streams.get(label)
        if gen is None:
            gen = streams[label] = ctx.seeds.generator(f"rep3/{label}")
        return rep3_zero_shares(shape, gen)

    def _reshare(self, ctx, z_parts, z_tasks, label):
        """One resharing round: mask with zero-shares, rotate one link.

        ``z_parts[i]`` is party i's cross-term; returns the new share
        triple plus per-share availability tasks.  Party i sends its
        masked term to party i-1, restoring the replicated layout.
        """
        alphas = self._zero_shares(ctx, label, z_parts[0].shape)
        nbytes = z_parts[0].nbytes
        masked, mask_tasks = [], []
        for i in range(3):
            # Expand the two pairwise PRG streams behind alpha_i, then mask.
            t_prg = ctx.server_cpu[i].run(
                ctx.config.cpu_spec.rng_seconds(2 * nbytes, parallel=ctx.config.cpu_parallel),
                deps=_deps(z_tasks[i]),
                label=f"{label}:prg",
            )
            c_i, t_c = ctx.server_cpu[i].elementwise(
                ring_add, [z_parts[i], alphas[i]], deps=(t_prg,), label=f"{label}:mask"
            )
            masked.append(c_i)
            mask_tasks.append(t_c)
        tasks = []
        for i in range(3):
            dst = (i - 1) % 3
            link = ctx.server_link(i, dst)
            t = _send_array(
                ctx, link, f"server{i}", f"server{dst}", f"{label}/reshare{i}",
                masked[i], deps=(mask_tasks[i],), label=f"{label}:reshare",
            )
            tasks.append(t)
        return tuple(masked), tuple(tasks)

    # --- interactive protocols ----------------------------------------------

    def matmul(self, ctx, x, y, m, k, n, both_fixed, *, label, truncate_result):
        decision = ctx.profiler.place_gemm(m, 2 * k, n, operands_on_gpu=False)
        z_parts, z_tasks = [], []
        for i in range(3):
            j = (i + 1) % 3
            start = _chain(ctx, _deps(x.tasks[i], x.tasks[j], y.tasks[i], y.tasks[j]))
            ysum, t_sum = ctx.server_cpu[i].elementwise(
                ring_add, [y.shares[i], y.shares[j]], deps=start, label=f"{label}:ysum"
            )
            left = np.concatenate([x.shares[i], x.shares[j]], axis=1)
            right = np.concatenate([ysum, y.shares[i]], axis=0)
            ready = _deps(t_sum)
            if decision.placement == "gpu" and ctx.server_gpu[i] is not None:
                gpu = ctx.server_gpu[i]
                lbuf, tl = gpu.h2d(left, deps=ready, label=f"{label}:h2d:L")
                rbuf, tr = gpu.h2d(right, deps=ready, label=f"{label}:h2d:R")
                zbuf, tz = gpu.gemm_ring(lbuf, rbuf, deps=(tl, tr), label=f"{label}:gemm")
                z_i, td = gpu.d2h(zbuf, deps=(tz,), label=f"{label}:d2h")
                for b in (lbuf, rbuf, zbuf):
                    gpu.free(b)
                z_parts.append(z_i)
                z_tasks.append(td)
            else:
                z_i, tg = ctx.server_cpu[i].gemm_ring(
                    left, right, deps=ready, label=f"{label}:cpu_gemm"
                )
                z_parts.append(z_i)
                z_tasks.append(tg)
        shares, tasks = self._reshare(ctx, z_parts, z_tasks, label)
        _set_chain(ctx, tasks)
        out = SharedTensor(ctx=ctx, shares=shares, kind="fixed", tasks=tasks)
        if both_fixed and truncate_result:
            out = core_ops.truncate(out, label=f"{label}:trunc")
        elif not both_fixed:
            out.kind = "fixed" if (x.kind == "fixed" or y.kind == "fixed") else "indicator"
        return out

    def elementwise_mul(self, ctx, x, y, *, label):
        nbytes = x.nbytes
        decision = ctx.profiler.place_elementwise(4 * nbytes, operands_on_gpu=False)
        z_parts, z_tasks = [], []
        for i in range(3):
            j = (i + 1) % 3
            start = _chain(ctx, _deps(x.tasks[i], x.tasks[j], y.tasks[i], y.tasks[j]))
            z_i = rep3_cross_term(i, x.shares, y.shares)
            if decision.placement == "gpu" and ctx.server_gpu[i] is not None:
                gpu = ctx.server_gpu[i]
                bufs, tdeps = [], list(start)
                for arr, nm in (
                    (x.shares[i], "A"), (x.shares[j], "A2"),
                    (y.shares[i], "B"), (y.shares[j], "B2"),
                ):
                    buf, tt = gpu.h2d(arr, deps=start, label=f"{label}:h2d:{nm}")
                    bufs.append(buf)
                    tdeps.append(tt)
                out_buf = gpu.pool.allocate(z_i)
                tk = gpu.clock.run(
                    gpu.stream(0),
                    gpu.spec.elementwise_seconds(4 * nbytes),
                    deps=tuple(tdeps),
                    label=f"{label}:kernel",
                )
                _, tout = gpu.d2h(out_buf, deps=(tk,), label=f"{label}:d2h")
                for b in bufs + [out_buf]:
                    gpu.free(b)
                z_parts.append(z_i)
                z_tasks.append(tout)
            else:
                tk = ctx.server_cpu[i].run(
                    ctx.config.cpu_spec.elementwise_seconds(
                        4 * nbytes, parallel=ctx.config.cpu_parallel
                    ),
                    deps=start,
                    label=f"{label}:cpu",
                )
                z_parts.append(z_i)
                z_tasks.append(tk)
        shares, tasks = self._reshare(ctx, z_parts, z_tasks, label)
        _set_chain(ctx, tasks)
        out = SharedTensor(ctx=ctx, shares=shares, kind="fixed", tasks=tasks)
        if x.kind == "fixed" and y.kind == "fixed":
            out = core_ops.truncate(out, label=f"{label}:trunc")
        elif x.kind == "indicator" and y.kind == "indicator":
            out.kind = "indicator"
        return out

    def truncate(self, ctx, x, *, label):
        frac = ctx.encoder.frac_bits
        nbytes = x.nbytes
        cpu = ctx.config.cpu_spec
        par = ctx.config.cpu_parallel
        # Pair truncation: party 0 folds and truncates (x0 + x1); parties
        # 1 and 2 both hold x2 and truncate it as the negative share.
        # The fold and both truncated halves are op-local buffers, so the
        # whole rescale runs in place on them.
        fold = ring_add(x.shares[0], x.shares[1])
        t_a = truncate_share(fold, frac, 0, out=fold)
        t_b = truncate_share(x.shares[2], frac, 1)
        alphas = self._zero_shares(ctx, label, x.shape)
        y0 = ring_add(t_a, alphas[0], out=t_a)
        y1 = alphas[1]
        y2 = ring_add(t_b, alphas[2], out=t_b)
        t0 = ctx.server_cpu[0].run(
            cpu.elementwise_seconds(3 * nbytes, parallel=par),
            deps=_deps(x.tasks[0], x.tasks[1]),
            label=label,
        )
        t1 = ctx.server_cpu[1].run(
            cpu.elementwise_seconds(2 * nbytes, parallel=par),
            deps=_deps(x.tasks[2]),
            label=label,
        )
        t2 = ctx.server_cpu[2].run(
            cpu.elementwise_seconds(2 * nbytes, parallel=par),
            deps=_deps(x.tasks[2]),
            label=label,
        )
        # One masked message restores the replicated layout: party 2 needs
        # the new share 0, which only party 0 can compute.
        link = ctx.server_link(0, 2)
        t_send = _send_array(
            ctx, link, "server0", "server2", f"{label}/lift", y0,
            deps=(t0,), label=f"{label}:lift",
        )
        tasks = (t_send, t1, t2)
        return SharedTensor(ctx=ctx, shares=(y0, y1, y2), kind="fixed", tasks=tasks)

    def compare_const(self, ctx, x, threshold, *, label):
        c_enc = int(ctx.encoder.encode(np.float64(threshold)))
        # Fold the replicated sharing onto the two comparing parties:
        # party 0 forms a = x0 + x1 locally, party 2 contributes b = x2,
        # and the existing 2-party comparison core runs unchanged.
        a = ring_add(x.shares[0], x.shares[1])
        b = x.shares[2]
        bundle = ctx.gen_comparison_bundle(x.shape, label=label)
        if bundle is not None:
            res = secure_ge_const(a, b, c_enc, bundle)
        else:
            if ctx.config.fresh_triplets:
                seed_label = f"cmp-{ctx.comparisons_issued}"
            else:
                seed_label = f"cmp/{label}"
            res = emulated_ge_const(a, b, c_enc, ctx.seeds.generator(seed_label))

        n = int(np.prod(x.shape))
        nbytes = x.nbytes
        cpu = ctx.config.cpu_spec
        par = ctx.config.cpu_parallel
        start = _chain(ctx, _deps(*x.tasks))
        fold = ctx.server_cpu[0].run(
            cpu.elementwise_seconds(nbytes, parallel=par),
            deps=_deps(x.tasks[0], x.tasks[1], *start),
            label=f"{label}:fold",
        )
        cpu_tasks = {
            0: ctx.server_cpu[0].run(
                cpu.elementwise_seconds(70 * n, parallel=par), deps=(fold,), label=f"{label}:gmw"
            ),
            2: ctx.server_cpu[2].run(
                cpu.elementwise_seconds(70 * n, parallel=par),
                deps=_deps(x.tasks[2], *start),
                label=f"{label}:gmw",
            ),
        }
        half = res.online_bytes // 2
        extra_latency = (res.rounds - 1) * ctx.config.server_link.latency_s
        link = ctx.server_link(0, 2)
        framed = ctx.config.wire_frames or ctx.config.coalesce_rounds
        net_tasks = {}
        for src, dst in ((0, 2), (2, 0)):
            if framed:
                sizes = blob_frame_sizes(f"{label}:rounds", half)
                t = link.send_framed(
                    f"server{src}", f"server{dst}", sizes,
                    deps=(cpu_tasks[src],), label=f"{label}:rounds",
                )
                wire_nbytes = sizes.nbytes
            else:
                t = link.send(
                    f"server{src}", f"server{dst}", half,
                    deps=(cpu_tasks[src],), label=f"{label}:rounds",
                )
                wire_nbytes = half
            ctx.record_wire(
                f"server{src}", f"server{dst}", f"{label}:rounds", nbytes=wire_nbytes
            )
            net_tasks[dst] = ctx.online_clock.run(
                f"link.server{src}->server{dst}", extra_latency, deps=(t,), label=f"{label}:latency"
            )
        done0 = ctx.online_clock.join([cpu_tasks[0], net_tasks[0]])
        done2 = ctx.online_clock.join([cpu_tasks[2], net_tasks[2]])

        # Lift the 2-party indicator sharing (r at parties 0/2) back to a
        # replicated 3-sharing with zero-share masking; two masked
        # messages restore the pairs the other parties are missing.
        beta = self._zero_shares(ctx, f"{label}:lift", x.shape)
        r0 = ring_add(res.share0, beta[0])
        r1 = beta[1]
        r2 = ring_add(res.share1, beta[2])
        lift_tasks = []
        for p, dep in ((0, done0), (1, None), (2, done2)):
            t_prg = ctx.server_cpu[p].run(
                cpu.rng_seconds(2 * nbytes, parallel=par), deps=_deps(dep), label=f"{label}:prg"
            )
            lift_tasks.append(t_prg)
        s02 = _send_array(
            ctx, ctx.server_link(0, 2), "server0", "server2", f"{label}/lift0", r0,
            deps=(lift_tasks[0],), label=f"{label}:lift",
        )
        s21 = _send_array(
            ctx, ctx.server_link(1, 2), "server2", "server1", f"{label}/lift2", r2,
            deps=(lift_tasks[2],), label=f"{label}:lift",
        )
        tasks = (s02, lift_tasks[1], s21)
        _set_chain(ctx, tasks)
        return SharedTensor(ctx=ctx, shares=(r0, r1, r2), kind="indicator", tasks=tasks)
