"""Shared dealer service: one offline provisioner for a replica fleet.

Each replica owns its own :class:`~repro.mpc.pool.TripletPool` (offline
material is bound to a context's RNG streams and clocks), but *deciding*
what to provision is a fleet-level job: the :class:`DealerService`
aggregates every replica's forward-only ``offline_plan`` demand at the
fixed batch shape, nets out what each pool already stocks, and tops up
each replica through the multi-consumer
:meth:`~repro.mpc.pool.TripletPool.provision_demand` path — one fused
generation pass per replica, on that replica's offline clock, before its
first batch runs.

The service is idempotent per replica (label-cached triplets mean one
pass at the batch shape covers every subsequent batch) and lazily keyed
to queued work, so an idle or autoscaled-in replica costs nothing until
a request actually lands on it.  Telemetry (on the fleet registry):

* ``fleet.dealer.provisions`` — provisioning passes, by replica;
* ``fleet.dealer.triplets`` — triplets banked, by replica;
* ``fleet.dealer.demand`` — gauge of the last aggregated fleet demand.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.telemetry import Telemetry


def demand_map(model, batch_size: int) -> dict[tuple, int]:
    """Aggregate a model's forward-only offline plan into demand counts."""
    plan = getattr(model, "offline_plan", None)
    if plan is None:
        return {}
    demand: dict[tuple, int] = {}
    for req in plan(batch_size, training=False):
        key = (req.kind, req.shapes)
        demand[key] = demand.get(key, 0) + 1
    return demand


class DealerService:
    """Provision replica triplet pools from aggregated offline demand."""

    def __init__(
        self,
        *,
        telemetry: Telemetry | None = None,
        on_provision: Callable[[str, dict], None] | None = None,
    ):
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        #: Hook called as ``on_provision(replica_name, demand)`` after a
        #: pass lands — the fleet journals it for conformance replay.
        self.on_provision = on_provision
        self._provisioned: set[str] = set()
        self._passes = self.telemetry.counter(
            "fleet.dealer.provisions", "dealer provisioning passes, by replica"
        )
        self._triplets = self.telemetry.counter(
            "fleet.dealer.triplets", "triplets banked by the dealer, by replica"
        )
        self._demand_gauge = self.telemetry.gauge(
            "fleet.dealer.demand", "aggregated fleet triplet demand at last provision"
        )

    def forget(self, replica_name: str) -> None:
        """Drop a retired replica's provisioning record."""
        self._provisioned.discard(replica_name)

    def provision(self, replicas: Iterable) -> int:
        """Top up every replica with queued work; returns triplets banked.

        Demand is aggregated fleet-wide for the telemetry gauge, then
        each un-provisioned replica's shortfall (declared demand minus
        current pool stock) is generated in that replica's pool.
        """
        pending = [
            r for r in replicas
            if r.name not in self._provisioned and len(r.queue)
        ]
        if not pending:
            return 0
        fleet_demand = 0
        banked = 0
        for replica in pending:
            if not replica.ctx.backend.needs_dealer:
                # Dealer-free backend (e.g. rep3): the replica never
                # consumes triplets, so mark it provisioned and move on.
                self._provisioned.add(replica.name)
                continue
            demand = demand_map(replica.model, replica.batcher.max_batch)
            fleet_demand += sum(demand.values())
            shortfall = self._shortfall(replica, demand)
            self._provisioned.add(replica.name)
            if not shortfall:
                continue
            count = int(replica.ctx.provision_demand(shortfall))
            replica.note_provisioned(count)
            self._passes.inc(1, replica=replica.name)
            self._triplets.inc(count, replica=replica.name)
            if self.on_provision is not None:
                self.on_provision(replica.name, shortfall)
            banked += count
        self._demand_gauge.set(fleet_demand)
        return banked

    @staticmethod
    def _shortfall(replica, demand: dict[tuple, int]) -> dict[tuple, int]:
        """Demand not already covered by the replica's pool stock."""
        pool = getattr(replica.ctx, "triplet_pool", None)
        if pool is None:
            return dict(demand)
        short: dict[tuple, int] = {}
        for (kind, shapes), count in demand.items():
            missing = count - pool.stock_for(kind, shapes)
            if missing > 0:
                short[(kind, shapes)] = missing
        return short
