"""One serving replica: a `SecureContext` behind the replica protocol.

A :class:`Replica` is the unit a serving fleet scales in: one secure
deployment (its own server pair, triplet pool, and clocks) wrapped in
the four-method replica protocol the :class:`~repro.serve.fleet.FleetRouter`
speaks:

* :meth:`submit` — admission-controlled, secret-shares the rows at the
  door (an offline-clock cost); a full queue raises the retryable
  :class:`~repro.util.errors.QueueFullError` before any sharing cost.
* :meth:`poll` — completed :class:`InferenceResponse`\\ s since the last
  poll, each exactly once (the router's collection path).
* :meth:`drain` — serve everything queued, idling the online clock
  through partial-batch timers (:meth:`pump` serves only what is ready).
* :meth:`stats` — queue depth, served counts, crash state, and the p95
  latency, read from the replica's own ``serve.*`` telemetry — the
  signal placement policies and the autoscaler consume.

The serving mechanics are unchanged from the original single-server
layer: a bounded :class:`~repro.serve.queue.RequestQueue`, an
:class:`~repro.serve.batcher.AdaptiveBatcher` coalescing fixed-shape
plans (pad-and-trim, so ragged tails are served, never dropped), and
:func:`~repro.core.inference.run_secure_batch` with the fault-retry /
blame machinery underneath.  What is new is the crash surface: when a
batch exhausts its retry budget the requests return to the queue head,
the replica remembers the blamed party (:attr:`crashed_party`), and the
router can :meth:`take_pending` the admitted requests back and
:meth:`respawn` the replica through the :mod:`repro.faults` recovery
path — so a crashed replica drains, never drops.

The legacy :class:`~repro.serve.server.SecureInferenceServer` is now a
deprecation shim over this class.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.core.inference import run_secure_batch
from repro.core.tensor import SharedTensor
from repro.faults.blame import PartyFailure
from repro.faults.recovery import respawn_party
from repro.serve.batcher import AdaptiveBatcher, BatchPlan
from repro.serve.queue import InferenceRequest, RequestQueue
from repro.telemetry import maybe_span
from repro.util.errors import ConfigError, ServeError

_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


@dataclass(frozen=True)
class InferenceResponse:
    """One served request: predictions plus its latency spans."""

    client_id: str
    request_id: int
    predictions: np.ndarray  # (rows, n_out), padding already trimmed
    enqueue_t: float
    dequeue_t: float
    done_t: float
    batch_index: int
    retries: int  # retries of the batch this request rode in

    @property
    def rows(self) -> int:
        return self.predictions.shape[0]

    @property
    def queue_wait_s(self) -> float:
        return self.dequeue_t - self.enqueue_t

    @property
    def service_s(self) -> float:
        return self.done_t - self.dequeue_t

    @property
    def latency_s(self) -> float:
        return self.done_t - self.enqueue_t


@dataclass
class ServeReport:
    """Aggregate accounting for one replica's lifetime (so far)."""

    responses: list[InferenceResponse] = field(default_factory=list)
    batches: int = 0
    served_requests: int = 0
    served_rows: int = 0
    padded_rows: int = 0
    retried_batches: int = 0
    retry_online_s: float = 0.0
    rejected_requests: int = 0
    timer_waits: int = 0
    provisioned_triplets: int = 0
    offline_s: float = 0.0
    online_s: float = 0.0
    latency: dict = field(default_factory=dict)  # {"p50": s, "p95": s, "p99": s}

    @property
    def mean_batch_fill(self) -> float:
        """Served rows per batch slot (1.0 = no padding)."""
        total = self.served_rows + self.padded_rows
        return self.served_rows / total if total else 0.0

    def response_for(self, client_id: str, request_id: int) -> InferenceResponse | None:
        for resp in self.responses:
            if resp.client_id == client_id and resp.request_id == request_id:
                return resp
        return None


@dataclass(frozen=True)
class ReplicaStats:
    """The placement/autoscaling view of one replica, from ``serve.*``."""

    name: str
    queued_requests: int
    queued_rows: int
    served_requests: int
    served_rows: int
    batches: int
    crashed: bool
    online_s: float
    p95_s: float
    backend: str = "beaver2pc"


class Replica:
    """Queue + batcher + the fixed-shape secure forward path, named.

    Parameters
    ----------
    ctx, model:
        The replica's own :class:`~repro.core.context.SecureContext`
        and the secure model deployed on it.
    name:
        Stable identity on the fleet's hash ring (and in reports).
    max_batch / max_wait_s:
        The :class:`AdaptiveBatcher` knobs — fixed batch shape and the
        partial-batch timer.
    queue_rows:
        Admission bound in rows (default ``8 * max_batch``).
    request_retries:
        Per-batch retry budget handed to
        :func:`~repro.core.inference.run_secure_batch`.
    audit:
        Attach a transcript recorder to the context so the replica's
        wire view can be replayed/audited (:mod:`repro.audit`).
    managed_provisioning:
        When True an external :class:`~repro.serve.dealer.DealerService`
        owns pool provisioning and the replica's lazy self-provisioning
        path is disabled (the fleet sets this).
    """

    def __init__(
        self,
        ctx,
        model,
        *,
        name: str = "replica0",
        max_batch: int = 64,
        max_wait_s: float = 1e-3,
        queue_rows: int | None = None,
        request_retries: int = 2,
        audit: bool = False,
        managed_provisioning: bool = False,
    ):
        self.ctx = ctx
        self.model = model
        self.name = str(name)
        self.request_retries = request_retries
        self.managed_provisioning = bool(managed_provisioning)
        # Deployment audit hook: with ``audit`` on (or a recorder already
        # attached to the context) every served request's wire traffic is
        # recorded, and wire_audit() chi-squares each server's view.
        if audit and getattr(ctx, "recorder", None) is None:
            ctx.attach_recorder()
        self.recorder = getattr(ctx, "recorder", None)
        self.batcher = AdaptiveBatcher(max_batch=max_batch, max_wait_s=max_wait_s)
        self.queue = RequestQueue(
            max_rows=queue_rows if queue_rows is not None else 8 * max_batch,
            telemetry=ctx.telemetry,
        )
        self.crashed_party: str | None = None
        self._rid = itertools.count(1)
        self._responses: list[InferenceResponse] = []
        self._poll_cursor = 0
        self._batches = 0
        self._padded_rows = 0
        self._retried_batches = 0
        self._retry_online_s = 0.0
        self._timer_waits = 0
        self._provision_done = False
        self._provisioned = 0
        self._start = ctx.mark()
        self._in_features = next(
            (
                int(layer.in_features)
                for layer in getattr(model, "layers", [])
                if getattr(layer, "in_features", None) is not None
            ),
            None,
        )
        t = ctx.telemetry
        self._served = t.counter("serve.requests_served", "requests answered, by client")
        self._rows_served = t.counter("serve.rows_served", "input rows answered")
        self._batches_run = t.counter("serve.batches", "coalesced secure batches run")
        self._pad_counter = t.counter(
            "serve.padded_rows", "zero rows appended to reach the fixed batch shape"
        )
        self._timer_counter = t.counter(
            "serve.batch_timer_waits", "partial batches cut by the max_wait timer"
        )
        self._depth_gauge = t.gauge("serve.queue_depth_rows")
        self._latency = t.histogram(
            "serve.request_latency_seconds",
            "per-request online-clock spans, by stage (queue/service/total)",
        )
        self._fill = t.histogram(
            "serve.batch_fill", "served rows per batch slot (1.0 = no padding)"
        )

    # -- client side ------------------------------------------------------------

    def submit(self, client_id: str, x: np.ndarray) -> int:
        """Share and enqueue one request; returns its request id.

        Raises the retryable :class:`QueueFullError` when admission
        control refuses (before any sharing cost is paid), and
        :class:`ServeError` for requests that can never be served
        (empty, or wider than ``max_batch`` rows).
        """
        x = self._validate(client_id, x)
        # reject before paying the share/upload cost
        self.queue.check_admission(client_id, x.shape[0])
        return self._admit(client_id, x)

    def force_admit(self, client_id: str, x: np.ndarray) -> int:
        """Admit bypassing the row bound — the router's recovery path.

        A request re-routed off a crashed replica was already admitted
        into the fleet once and must not be lost to backpressure on its
        new home; like :meth:`RequestQueue.requeue_front`, this skips
        admission control only.
        """
        x = self._validate(client_id, x)
        return self._admit(client_id, x, forced=True)

    def _validate(self, client_id: str, x) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ConfigError(f"submit expects 2-D rows, got shape {x.shape}")
        if x.shape[0] < 1:
            raise ServeError(f"request from {client_id!r} has no rows")
        if x.shape[0] > self.batcher.max_batch:
            raise ServeError(
                f"request of {x.shape[0]} rows exceeds max_batch={self.batcher.max_batch}; "
                "split it client-side"
            )
        if self._in_features is not None and x.shape[1] != self._in_features:
            raise ConfigError(
                f"request has {x.shape[1]} features, model expects {self._in_features}"
            )
        return x

    def _admit(self, client_id: str, x: np.ndarray, *, forced: bool = False) -> int:
        request_id = next(self._rid)
        with maybe_span(self.ctx.telemetry, "serve.share_request", clock="offline",
                        client=client_id):
            shared = SharedTensor.from_plain(
                self.ctx, x, label=f"serve/{client_id}/{request_id}"
            )
        request = InferenceRequest(
            client_id=client_id,
            request_id=request_id,
            x=shared,
            enqueue_t=self.ctx.online_clock.now(),
        )
        if forced:
            self.queue.admit_forced(request)
        else:
            self.queue.admit(request)
        return request_id

    # -- server side ------------------------------------------------------------

    def pump(self) -> int:
        """Serve every batch that is ready *now*; returns batches run.

        Partial batches whose timer has not fired stay queued — call
        :meth:`drain` (or ``pump`` again later) to flush them.
        """
        ran = 0
        while self.batcher.ready(self.queue, self.ctx.online_clock.now()):
            plan = self.batcher.next_plan(self.queue)
            if plan is None:  # pragma: no cover - ready() implies a plan
                break
            self._serve_plan(plan)
            ran += 1
        return ran

    def drain(self) -> int:
        """Serve everything queued, idling the clock through batch timers."""
        ran = self.pump()
        while len(self.queue):
            self._wait_for_timer()
            ran += self.pump()
        return ran

    def poll(self) -> list[InferenceResponse]:
        """Responses completed since the last poll, each exactly once."""
        new = self._responses[self._poll_cursor:]
        self._poll_cursor = len(self._responses)
        return list(new)

    def stats(self) -> ReplicaStats:
        """The placement/autoscaling signal, from this replica's telemetry."""
        return ReplicaStats(
            name=self.name,
            queued_requests=len(self.queue),
            queued_rows=self.queued_rows,
            served_requests=len(self._responses),
            served_rows=int(self._rows_served.value()),
            batches=self._batches,
            crashed=self.crashed_party is not None,
            online_s=self.ctx.online_clock.now(),
            p95_s=self._latency.quantile(0.95, stage="total"),
            backend=self.ctx.backend.name,
        )

    @property
    def queued_rows(self) -> int:
        """Queue depth in rows, via the ``serve.queue_depth_rows`` gauge."""
        return int(self._depth_gauge.value())

    # -- fleet recovery surface --------------------------------------------------

    def take_pending(self) -> list[InferenceRequest]:
        """Remove and return every queued request (router recovery path).

        After a crash the admitted requests drain back through the
        router: their plaintexts are re-shared onto a healthy replica,
        so the shares held here (bound to this context) are dropped.
        """
        return self.queue.take_all()

    def respawn(self) -> None:
        """Restart the blamed party through the faults recovery path.

        No-op when the replica never crashed.  Afterwards the replica is
        healthy again and placement may route new requests to it.
        """
        if self.crashed_party is None:
            return
        party, self.crashed_party = self.crashed_party, None
        with maybe_span(
            self.ctx.telemetry, "serve.replica_respawn", clock="online", party=party
        ):
            respawn_party(self.ctx, party)

    def report(self) -> ServeReport:
        """Aggregate accounting; also pins p50/p95/p99 gauges for snapshots."""
        latency = {
            name: self._latency.quantile(q, stage="total") for name, q in _QUANTILES
        }
        gauge = self.ctx.telemetry.gauge(
            "serve.latency_quantile_seconds", "request latency quantiles at last report"
        )
        for name, _q in _QUANTILES:
            gauge.set(latency[name], q=name)
        delta = self.ctx.since(self._start)
        rejected = self.ctx.telemetry.counter("serve.requests_rejected").value()
        return ServeReport(
            responses=list(self._responses),
            batches=self._batches,
            served_requests=len(self._responses),
            served_rows=sum(r.rows for r in self._responses),
            padded_rows=self._padded_rows,
            retried_batches=self._retried_batches,
            retry_online_s=self._retry_online_s,
            rejected_requests=int(rejected),
            timer_waits=self._timer_waits,
            provisioned_triplets=self._provisioned,
            offline_s=delta.offline_s,
            online_s=delta.online_s,
            latency=latency,
        )

    def latency_quantiles(self) -> dict:
        return {name: self._latency.quantile(q, stage="total") for name, q in _QUANTILES}

    def note_provisioned(self, count: int) -> None:
        """Credit externally provisioned triplets (the dealer's path)."""
        self._provisioned += int(count)
        self._provision_done = True

    def wire_audit(self, **kwargs):
        """Chi-square the recorded wire view of this replica's traffic.

        Requires the replica to have been built with ``audit=True`` (or
        a recorder attached to the context beforehand); see
        :func:`repro.audit.audit_transcript` for the knobs.
        """
        from repro.audit.wire import audit_transcript

        if self.recorder is None:
            raise ServeError(
                "replica has no transcript recorder; construct with audit=True"
            )
        kwargs.setdefault("telemetry", self.ctx.telemetry)
        return audit_transcript(self.recorder.transcript(), **kwargs)

    # -- internals --------------------------------------------------------------

    def _wait_for_timer(self) -> None:
        """Idle the online clock until the head request's timer fires."""
        deadline = self.batcher.timer_deadline(self.queue)
        if deadline is None:
            return
        now = self.ctx.online_clock.now()
        if deadline > now:
            self.ctx.online_clock.advance_all(deadline)
        self._timer_waits += 1
        self._timer_counter.inc(1)

    def _provision(self) -> None:
        """Pool-backed provisioning keyed to the batcher's demand plan.

        With label-cached triplets (the default), one provisioning pass
        at the fixed batch shape covers every subsequent batch.  Under a
        fleet the shared :class:`~repro.serve.dealer.DealerService` owns
        this instead (``managed_provisioning=True``).
        """
        if self._provision_done or self.managed_provisioning:
            return
        self._provision_done = True
        provision = getattr(self.ctx, "provision_for", None)
        if provision is not None:
            self._provisioned = int(provision(self.model, self.batcher.max_batch, training=False))

    def _assemble(self, plan: BatchPlan) -> SharedTensor:
        """Concatenate request shares and zero-pad to the fixed shape."""
        parts = [[r.x.shares[p] for r in plan.requests] for p in range(self.ctx.n_parties)]
        if plan.pad_rows:
            fill = np.zeros((plan.pad_rows, parts[0][0].shape[1]), dtype=parts[0][0].dtype)
            for party_parts in parts:
                party_parts.append(fill)
        return SharedTensor(
            ctx=self.ctx,
            shares=tuple(
                np.ascontiguousarray(np.concatenate(party_parts, axis=0))
                for party_parts in parts
            ),
            kind=plan.requests[0].x.kind,
        )

    def _serve_plan(self, plan: BatchPlan) -> None:
        self._provision()
        dequeue_t = self.ctx.online_clock.now()
        for req in plan.requests:
            req.dequeue_t = dequeue_t
        batch = self._assemble(plan)
        try:
            outcome = run_secure_batch(
                self.ctx,
                self.model,
                batch,
                batch_label=f"serve{self._batches}",
                max_request_retries=self.request_retries,
            )
        except PartyFailure as failure:
            # Retry budget exhausted: identifiable abort, but the
            # requests are NOT lost — they return to the queue head so
            # the router can drain them back (or a recovered standalone
            # deployment can re-serve them).
            self.crashed_party = failure.party
            for req in reversed(plan.requests):
                self.queue.requeue_front(req)
            raise
        done_t = self.ctx.online_clock.now()
        lo = 0
        for req in plan.requests:
            pred = outcome.outputs[lo : lo + req.rows]
            lo += req.rows
            resp = InferenceResponse(
                client_id=req.client_id,
                request_id=req.request_id,
                predictions=pred,
                enqueue_t=req.enqueue_t,
                dequeue_t=dequeue_t,
                done_t=done_t,
                batch_index=self._batches,
                retries=outcome.retries,
            )
            self._responses.append(resp)
            self._served.inc(1, client=req.client_id)
            self._rows_served.inc(req.rows)
            self._latency.observe(resp.queue_wait_s, stage="queue")
            self._latency.observe(resp.service_s, stage="service")
            self._latency.observe(resp.latency_s, stage="total", client=req.client_id)
        self._batches += 1
        self._batches_run.inc(1)
        self._padded_rows += plan.pad_rows
        if plan.pad_rows:
            self._pad_counter.inc(plan.pad_rows)
        self._fill.observe(plan.rows / plan.max_batch)
        if outcome.retries:
            self._retried_batches += 1
        self._retry_online_s += outcome.retry_online_s
