"""The sharded secure-serving fleet: router, replicas, shared dealer.

One :class:`~repro.serve.replica.Replica` is one secure deployment —
one server pair, one pool, one pair of clocks.  The fleet scales that
horizontally: N replicas (each built from the same ``model_factory``
on its own :class:`~repro.core.context.SecureContext`) behind a
:class:`FleetRouter` front-end with pluggable placement
(:mod:`repro.serve.placement`), one shared
:class:`~repro.serve.dealer.DealerService` provisioning every replica's
triplet pool from aggregated offline demand, and an optional
latency-watermark autoscaler (:mod:`repro.serve.autoscale`).

Delivery contract — *admitted exactly once*: every request the fleet
accepts is answered exactly once, crashes included.  A replica whose
batch exhausts its retry budget requeues the requests, and the router
recovers: completed responses are harvested, the admitted requests are
drained back (:meth:`Replica.take_pending`), the replica is respawned
through the :mod:`repro.faults` recovery path, and the drained
plaintexts are re-shared onto healthy replicas — re-routed requests
bypass admission (they were admitted once already), so backpressure can
reject but never drop.

Conformance: the fleet journals every operation it applies to each
replica (submits with payloads, dealer provisioning, pump/drain calls
and their outcomes, crash recoveries).  With ``audit=True`` each
replica records its wire transcript, and :meth:`verify_conformance`
replays each journal on a fresh standalone replica with the same
config — the replay must be bit-identical, transcript and predictions
both, proving sharding changed *where* requests ran but not *what* any
single deployment did.

Quickstart::

    import repro

    fleet = repro.api.serve(
        lambda ctx: repro.SecureMLP(ctx, 64, hidden=(32,), n_out=10),
        replicas=4, placement="hash", max_batch=64,
    )
    rid = fleet.submit("client-a", x_rows)
    fleet.drain()
    report = fleet.report()      # per-replica + fleet-aggregate accounting
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import FrameworkConfig
from repro.core.context import SecureContext
from repro.faults.blame import PartyFailure
from repro.serve.autoscale import AutoscalePolicy, FleetAutoscaler
from repro.serve.dealer import DealerService
from repro.serve.placement import make_placement
from repro.serve.replica import InferenceResponse, Replica, ServeReport
from repro.telemetry import Telemetry
from repro.util.errors import QueueFullError, ServeError

_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


@dataclass
class FleetTicket:
    """One admitted request's routing state (plaintext retained for reroute)."""

    fleet_rid: int
    client_id: str
    x: np.ndarray
    replica: str
    replica_rid: int
    resubmits: int = 0


@dataclass(frozen=True)
class FleetResponse:
    """One answered request: the replica's response plus fleet identity."""

    fleet_rid: int
    client_id: str
    replica: str
    response: InferenceResponse

    @property
    def predictions(self) -> np.ndarray:
        return self.response.predictions

    @property
    def rows(self) -> int:
        return self.response.rows

    @property
    def latency_s(self) -> float:
        return self.response.latency_s


@dataclass
class FleetReport:
    """Fleet-aggregate accounting plus every replica's own report."""

    replicas: dict[str, ServeReport] = field(default_factory=dict)
    responses: list[FleetResponse] = field(default_factory=list)
    served_requests: int = 0
    served_rows: int = 0
    pending_requests: int = 0
    dropped_requests: int = 0  # admitted - served - pending; the contract: 0
    batches: int = 0
    padded_rows: int = 0
    retried_batches: int = 0
    rejected_requests: int = 0
    rerouted_requests: int = 0
    replica_crashes: int = 0
    replicas_added: int = 0
    replicas_retired: int = 0
    offline_s: float = 0.0  # max over replicas (parallel deployments)
    online_s: float = 0.0  # max over replicas: the fleet makespan
    latency: dict = field(default_factory=dict)  # fleet-wide p50/p95/p99
    backends: dict = field(default_factory=dict)  # {replica: protocol backend}

    @property
    def rows_per_online_s(self) -> float:
        return self.served_rows / self.online_s if self.online_s else 0.0

    @property
    def mean_batch_fill(self) -> float:
        total = self.served_rows + self.padded_rows
        return self.served_rows / total if total else 0.0

    def response_for(self, client_id: str, fleet_rid: int) -> FleetResponse | None:
        for resp in self.responses:
            if resp.client_id == client_id and resp.fleet_rid == fleet_rid:
                return resp
        return None


class FleetRouter:
    """Placement + health filtering over the live replica set."""

    def __init__(self, placement="hash", *, telemetry: Telemetry | None = None):
        self.placement = make_placement(placement)
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._replicas: dict[str, Replica] = {}
        self._routed = self.telemetry.counter(
            "fleet.requests_routed", "requests placed, by replica"
        )

    def add(self, replica: Replica) -> None:
        if replica.name in self._replicas:
            raise ServeError(f"duplicate replica name {replica.name!r}")
        self._replicas[replica.name] = replica
        self.placement.add_replica(replica.name)

    def remove(self, name: str) -> None:
        self._replicas.pop(name, None)
        self.placement.remove_replica(name)

    def replicas(self) -> list[Replica]:
        return list(self._replicas.values())

    def get(self, name: str) -> Replica | None:
        return self._replicas.get(name)

    def healthy(self) -> list[Replica]:
        """Live replicas a request may be placed on (never a crashed one)."""
        return [r for r in self._replicas.values() if r.crashed_party is None]

    def route(self, client_id: str, *, exclude: str | None = None) -> list[Replica]:
        """Preference-ordered healthy replicas for one request."""
        candidates = [r for r in self.healthy() if r.name != exclude]
        if not candidates:  # nothing else: a respawned excluded replica will do
            candidates = self.healthy()
        return self.placement.rank(client_id, candidates)

    def note_routed(self, replica_name: str) -> None:
        self._routed.inc(1, replica=replica_name)


class SecureServingFleet:
    """N context replicas behind a router, a shared dealer, an autoscaler.

    Parameters
    ----------
    model_factory:
        ``(ctx) -> SecureModel`` — builds (and, for deployed weights,
        installs) the served model on one replica's context.  Called
        once per replica, and again per replica during conformance
        replay, so it must be deterministic given the context.
    replicas:
        Initial replica count (the autoscaler may change it later).
    config:
        Base :class:`FrameworkConfig`; replica *i* runs ``config`` with
        ``seed + i`` so RNG streams are distinct across the fleet.
    replica_config:
        Optional ``(index, base_config) -> FrameworkConfig`` hook for
        per-replica overrides (chaos shaping, heterogeneous pools).
    placement:
        ``"hash"`` (consistent-hash session affinity), ``"least-depth"``,
        or a :class:`~repro.serve.placement.PlacementPolicy` instance.
    autoscale:
        Optional :class:`~repro.serve.autoscale.AutoscalePolicy`.
    max_reroutes:
        Crash-recovery budget per request before the failure surfaces
        to the caller (the request stays queued, never dropped).
    audit:
        Record every replica's wire transcript; required by
        :meth:`verify_conformance`.
    """

    def __init__(
        self,
        model_factory,
        *,
        replicas: int = 2,
        config: FrameworkConfig | None = None,
        replica_config=None,
        placement="hash",
        max_batch: int = 64,
        max_wait_s: float = 1e-3,
        queue_rows: int | None = None,
        request_retries: int = 2,
        max_reroutes: int = 4,
        audit: bool = False,
        autoscale: AutoscalePolicy | None = None,
    ):
        if replicas < 1:
            raise ServeError(f"fleet needs >= 1 replica, got {replicas}")
        self.model_factory = model_factory
        self.base_config = config if config is not None else FrameworkConfig()
        self.replica_config = replica_config
        self.audit = bool(audit)
        self.max_reroutes = int(max_reroutes)
        self._knobs = dict(
            max_batch=max_batch,
            max_wait_s=max_wait_s,
            queue_rows=queue_rows,
            request_retries=request_retries,
        )
        self.telemetry = Telemetry()
        self.router = FleetRouter(placement, telemetry=self.telemetry)
        self.dealer = DealerService(
            telemetry=self.telemetry, on_provision=self._journal_provision
        )
        self.autoscaler = (
            FleetAutoscaler(self, autoscale) if autoscale is not None else None
        )
        self._replica_seq = itertools.count()
        self._fleet_rid = itertools.count(1)
        self._inflight: dict[tuple[str, int], FleetTicket] = {}
        self.responses: list[FleetResponse] = []
        self._journals: dict[str, list[tuple]] = {}
        self._configs: dict[str, FrameworkConfig] = {}
        self._retired: list[Replica] = []
        t = self.telemetry
        self._admitted = t.counter("fleet.requests_admitted", "requests the fleet accepted")
        self._rejected = t.counter(
            "fleet.requests_rejected", "submissions refused by every replica (retryable)"
        )
        self._rerouted = t.counter(
            "fleet.requests_rerouted", "requests re-shared onto another replica after a crash"
        )
        self._crashes = t.counter("fleet.replica_crashes", "replica failures recovered")
        self._added = t.counter("fleet.replicas_added", "replicas spawned")
        self._retired_counter = t.counter("fleet.replicas_retired", "replicas drained and retired")
        self._size_gauge = t.gauge("fleet.replicas", "live replica count")
        for _ in range(replicas):
            self.add_replica()

    # -- fleet membership -------------------------------------------------------

    def add_replica(self) -> Replica:
        """Spawn one replica (own context, model, pool) and join the ring."""
        index = next(self._replica_seq)
        name = f"replica{index}"
        cfg = self.base_config.but(seed=self.base_config.seed + index)
        if self.replica_config is not None:
            cfg = self.replica_config(index, cfg)
        ctx = SecureContext.create(cfg)
        model = self.model_factory(ctx)
        replica = Replica(
            ctx,
            model,
            name=name,
            audit=self.audit,
            managed_provisioning=True,
            **self._knobs,
        )
        self.router.add(replica)
        self._journals[name] = []
        self._configs[name] = cfg
        self._added.inc(1)
        self._size_gauge.set(len(self.router.replicas()))
        return replica

    def retire_replica(self, name: str | None = None) -> str:
        """Drain one replica and remove it from the ring (never drops work)."""
        live = self.router.replicas()
        if len(live) <= 1:
            raise ServeError("cannot retire the last replica")
        if name is None:
            healthy = self.router.healthy() or live
            name = min(healthy, key=lambda r: (r.queued_rows, r.name)).name
        replica = self.router.get(name)
        if replica is None:
            raise ServeError(f"no live replica named {name!r}")
        # Remove from placement first so the drain cannot race new work
        # onto a replica that is leaving.
        self.router.remove(name)
        try:
            self._drain_replica(replica)
        finally:
            self.dealer.forget(name)
            self._retired.append(replica)
            self._retired_counter.inc(1)
            self._size_gauge.set(len(self.router.replicas()))
        return name

    def replicas(self) -> list[Replica]:
        return self.router.replicas()

    @property
    def pending(self) -> int:
        """Admitted requests not yet answered."""
        return len(self._inflight)

    # -- client side ------------------------------------------------------------

    def submit(self, client_id: str, x: np.ndarray) -> int:
        """Route and admit one request; returns its fleet request id.

        Tries the placement order, failing over on queue-full
        backpressure; raises the retryable :class:`QueueFullError` only
        when *every* healthy replica refuses.
        """
        x = np.asarray(x, dtype=np.float64)
        order = self.router.route(client_id)
        if not order:
            raise ServeError("fleet has no healthy replicas")
        last_full: QueueFullError | None = None
        for replica in order:
            try:
                rid = replica.submit(client_id, x)
            except QueueFullError as exc:
                last_full = exc
                continue
            payload = np.array(x, copy=True)
            self._journals[replica.name].append(("submit", client_id, payload))
            fleet_rid = next(self._fleet_rid)
            self._inflight[(replica.name, rid)] = FleetTicket(
                fleet_rid=fleet_rid,
                client_id=client_id,
                x=payload,
                replica=replica.name,
                replica_rid=rid,
            )
            self._admitted.inc(1)
            self.router.note_routed(replica.name)
            return fleet_rid
        self._rejected.inc(1)
        assert last_full is not None
        raise last_full

    # -- serving ----------------------------------------------------------------

    def pump(self) -> int:
        """Serve every ready batch on every replica; returns batches run."""
        self.dealer.provision(self.router.replicas())
        ran = 0
        for replica in list(self.router.replicas()):
            ran += self._pump_replica(replica)
        self._collect()
        if self.autoscaler is not None:
            self.autoscaler.tick()
        return ran

    def drain(self) -> int:
        """Serve until every admitted request is answered; returns batches.

        Crash recoveries re-route work between rounds, so the loop runs
        until the in-flight set empties (or a request exhausts its
        reroute budget, which surfaces the :class:`PartyFailure`).
        """
        ran = self.pump()
        stalled = 0
        while self._inflight:
            before = len(self._inflight)
            self.dealer.provision(self.router.replicas())
            for replica in list(self.router.replicas()):
                if len(replica.queue):
                    ran += self._drain_replica(replica)
            self._collect()
            if len(self._inflight) >= before:
                stalled += 1
                if stalled > self.max_reroutes:  # pragma: no cover - defensive
                    raise ServeError(
                        f"fleet drain stalled with {len(self._inflight)} requests in flight"
                    )
            else:
                stalled = 0
        if self.autoscaler is not None:
            self.autoscaler.tick()
        return ran

    # -- accounting -------------------------------------------------------------

    def report(self) -> FleetReport:
        """Per-replica reports plus the fleet aggregate."""
        self._collect()
        live = [*self.router.replicas(), *self._retired]
        reports = {r.name: r.report() for r in live}
        backends = {r.name: r.ctx.backend.name for r in live}
        latencies = [resp.latency_s for resp in self.responses]
        latency = {
            name: (float(np.quantile(latencies, q)) if latencies else 0.0)
            for name, q in _QUANTILES
        }
        admitted = int(self._admitted.value())
        served = len(self.responses)
        return FleetReport(
            replicas=reports,
            responses=list(self.responses),
            served_requests=served,
            served_rows=sum(r.rows for r in self.responses),
            pending_requests=len(self._inflight),
            dropped_requests=admitted - served - len(self._inflight),
            batches=sum(r.batches for r in reports.values()),
            padded_rows=sum(r.padded_rows for r in reports.values()),
            retried_batches=sum(r.retried_batches for r in reports.values()),
            rejected_requests=int(self._rejected.value()),
            rerouted_requests=int(self._rerouted.value()),
            replica_crashes=int(self._crashes.value()),
            replicas_added=int(self._added.value()),
            replicas_retired=int(self._retired_counter.value()),
            offline_s=max((r.offline_s for r in reports.values()), default=0.0),
            online_s=max((r.online_s for r in reports.values()), default=0.0),
            latency=latency,
            backends=backends,
        )

    # -- conformance ------------------------------------------------------------

    def journal(self, replica_name: str) -> list[tuple]:
        """The operation journal replayed by :func:`replay_replica_journal`."""
        return list(self._journals[replica_name])

    def verify_conformance(self) -> dict[str, str | None]:
        """Replay every replica's journal standalone; diff the transcripts.

        Returns ``{replica_name: None}`` on bit-identity, or a
        human-readable divergence description per failing replica.
        Requires the fleet to have been built with ``audit=True``.
        """
        results: dict[str, str | None] = {}
        for replica in [*self.router.replicas(), *self._retired]:
            if replica.recorder is None:
                raise ServeError(
                    "conformance replay needs transcripts; build the fleet with audit=True"
                )
            replay = replay_replica_journal(
                self._journals[replica.name],
                self._configs[replica.name],
                self.model_factory,
                name=replica.name,
                **self._knobs,
            )
            results[replica.name] = _diff_replica(replica, replay)
        return results

    # -- internals --------------------------------------------------------------

    def _journal_provision(self, replica_name: str, demand: dict) -> None:
        self._journals[replica_name].append(("provision", dict(demand)))

    def _pump_replica(self, replica: Replica) -> int:
        try:
            ran = replica.pump()
        except PartyFailure as failure:
            self._journals[replica.name].append(("pump", True))
            self._recover(replica, failure)
            return 0
        self._journals[replica.name].append(("pump", False))
        return ran

    def _drain_replica(self, replica: Replica) -> int:
        try:
            ran = replica.drain()
        except PartyFailure as failure:
            self._journals[replica.name].append(("drain", True))
            self._recover(replica, failure)
            return 0
        self._journals[replica.name].append(("drain", False))
        return ran

    def _collect(self) -> None:
        for replica in [*self.router.replicas(), *self._retired]:
            self._collect_replica(replica)

    def _collect_replica(self, replica: Replica) -> None:
        for resp in replica.poll():
            ticket = self._inflight.pop((replica.name, resp.request_id), None)
            if ticket is None:  # pragma: no cover - exactly-once guard
                raise ServeError(
                    f"{replica.name} answered unknown request {resp.request_id}"
                )
            self.responses.append(
                FleetResponse(
                    fleet_rid=ticket.fleet_rid,
                    client_id=ticket.client_id,
                    replica=replica.name,
                    response=resp,
                )
            )

    def _recover(self, replica: Replica, failure: PartyFailure) -> None:
        """Crash path: harvest, drain back, respawn, re-route — drop nothing."""
        self._crashes.inc(1, replica=replica.name, party=failure.party)
        # 1. completed batches before the failure still count
        self._collect_replica(replica)
        # 2. admitted requests drain back through the router
        pending = replica.take_pending()
        self._journals[replica.name].append(("take_pending",))
        # 3. respawn the blamed party via the faults recovery path
        replica.respawn()
        self._journals[replica.name].append(("respawn",))
        # 4. re-share the drained plaintexts onto healthy replicas
        over_budget = None
        for request in pending:
            ticket = self._inflight.pop((replica.name, request.request_id), None)
            if ticket is None:  # pragma: no cover - exactly-once guard
                raise ServeError(
                    f"{replica.name} drained unknown request {request.request_id}"
                )
            if ticket.resubmits >= self.max_reroutes:
                # budget exhausted: keep the request admitted on the
                # respawned replica and surface the failure — queued,
                # never dropped, exactly like the standalone server.
                self._force_ticket(replica, ticket)
                over_budget = failure
                continue
            self._resubmit(ticket, exclude=replica.name)
        if over_budget is not None:
            raise over_budget

    def _resubmit(self, ticket: FleetTicket, *, exclude: str) -> None:
        order = self.router.route(ticket.client_id, exclude=exclude)
        if not order:
            raise ServeError("fleet has no healthy replicas to re-route onto")
        target = None
        rid = None
        for replica in order:
            try:
                rid = replica.submit(ticket.client_id, ticket.x)
            except QueueFullError:
                continue
            target = replica
            self._journals[replica.name].append(("submit", ticket.client_id, ticket.x))
            break
        if target is None:
            # every healthy replica is full: force-admit — re-routed
            # work was admitted once and never drops — but keep the row
            # bounds in the decision: oversubscribe the queue with the
            # most remaining headroom, not the depth-blind affinity
            # pick (ties break by preference order).
            target = max(
                order, key=lambda r: r.queue.max_rows - r.queue.depth_rows
            )
            rid = target.force_admit(ticket.client_id, ticket.x)
            self._journals[target.name].append(("force", ticket.client_id, ticket.x))
        ticket.replica = target.name
        ticket.replica_rid = rid
        ticket.resubmits += 1
        self._inflight[(target.name, rid)] = ticket
        self._rerouted.inc(1, to=target.name)
        self.router.note_routed(target.name)

    def _force_ticket(self, replica: Replica, ticket: FleetTicket) -> None:
        rid = replica.force_admit(ticket.client_id, ticket.x)
        self._journals[replica.name].append(("force", ticket.client_id, ticket.x))
        ticket.replica = replica.name
        ticket.replica_rid = rid
        self._inflight[(replica.name, rid)] = ticket


def replay_replica_journal(
    journal: list[tuple],
    config: FrameworkConfig,
    model_factory,
    *,
    name: str = "replay",
    max_batch: int = 64,
    max_wait_s: float = 1e-3,
    queue_rows: int | None = None,
    request_retries: int = 2,
) -> Replica:
    """Re-run one replica's journal on a fresh standalone deployment.

    The replay records its own transcript (``audit`` is always on), so
    callers can diff it bit-for-bit against the fleet replica's — the
    conformance oracle for the sharding layer.  Raises
    :class:`ServeError` if an op's outcome diverges (a pump/drain that
    failed in the fleet must fail identically in the replay).
    """
    ctx = SecureContext.create(config)
    model = model_factory(ctx)
    replica = Replica(
        ctx,
        model,
        name=name,
        max_batch=max_batch,
        max_wait_s=max_wait_s,
        queue_rows=queue_rows,
        request_retries=request_retries,
        audit=True,
        managed_provisioning=True,
    )
    for entry in journal:
        op = entry[0]
        if op == "submit":
            replica.submit(entry[1], entry[2])
        elif op == "force":
            replica.force_admit(entry[1], entry[2])
        elif op == "provision":
            banked = ctx.provision_demand(entry[1])
            replica.note_provisioned(banked)
        elif op in ("pump", "drain"):
            raised = False
            try:
                getattr(replica, op)()
            except PartyFailure:
                raised = True
            if raised != entry[1]:
                raise ServeError(
                    f"replay diverged: {op} {'failed' if raised else 'succeeded'} "
                    f"but the fleet run {'failed' if entry[1] else 'succeeded'}"
                )
        elif op == "take_pending":
            replica.take_pending()
        elif op == "respawn":
            replica.respawn()
        else:  # pragma: no cover - journal is fleet-written
            raise ServeError(f"unknown journal op {op!r}")
    return replica


def _diff_replica(original: Replica, replay: Replica) -> str | None:
    """Bit-compare a fleet replica against its standalone replay."""
    divergence = original.recorder.transcript().diff(replay.recorder.transcript())
    if divergence is not None:
        return f"transcript divergence: {divergence.describe()}"
    mine = original.report().responses
    theirs = replay.report().responses
    if len(mine) != len(theirs):
        return f"response count {len(mine)} != replay {len(theirs)}"
    for a, b in zip(mine, theirs):
        if (a.client_id, a.request_id) != (b.client_id, b.request_id):
            return (
                f"response order diverged: ({a.client_id},{a.request_id}) "
                f"!= ({b.client_id},{b.request_id})"
            )
        if not np.array_equal(a.predictions, b.predictions):
            return f"predictions diverged for ({a.client_id},{a.request_id})"
    return None
