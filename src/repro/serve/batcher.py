"""Adaptive request coalescing on the simulated clock.

The batcher turns queued requests into fixed-shape batch plans under two
knobs, the classic serving trade-off:

* ``max_batch`` — the fixed batch shape every plan is padded to (the
  shape pooled triplets and label-cached offline material are keyed on);
* ``max_wait_s`` — how long the head request may age on the online
  clock before a partial batch is cut anyway.

A batch is *ready* when a full batch of rows is queued, or the oldest
request has waited out the timer.  The batcher never owns the clock: it
only reads ``now`` and reports the deadline; the server decides whether
to idle the clock forward (``drain``) or only serve what is ready
(``pump``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.serve.queue import InferenceRequest, RequestQueue
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class BatchPlan:
    """One coalesced batch: the requests it serves and its padding."""

    requests: tuple[InferenceRequest, ...]
    max_batch: int

    @property
    def rows(self) -> int:
        return sum(r.rows for r in self.requests)

    @property
    def pad_rows(self) -> int:
        return self.max_batch - self.rows


class AdaptiveBatcher:
    """Coalesce queued requests up to ``max_batch`` rows / ``max_wait_s``."""

    def __init__(self, *, max_batch: int, max_wait_s: float):
        if max_batch < 1:
            raise ConfigError(f"batcher max_batch must be >= 1, got {max_batch}")
        if max_wait_s < 0:
            raise ConfigError(f"batcher max_wait_s must be >= 0, got {max_wait_s}")
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)

    def ready(self, queue: RequestQueue, now: float) -> bool:
        """Is a batch worth cutting right now?"""
        if not len(queue):
            return False
        if queue.depth_rows >= self.max_batch:
            return True
        oldest = queue.oldest_enqueue_t()
        # Same arithmetic as timer_deadline(): comparing ``now`` against
        # ``oldest + max_wait_s`` (rather than ``now - oldest`` against
        # ``max_wait_s``) keeps the two agreeing under float rounding —
        # otherwise a clock advanced exactly to the deadline can appear
        # not-yet-fired and the server spins re-arming the same timer.
        return oldest is not None and now >= oldest + self.max_wait_s

    def timer_deadline(self, queue: RequestQueue) -> float | None:
        """Online-clock time at which the head request's timer fires."""
        oldest = queue.oldest_enqueue_t()
        return None if oldest is None else oldest + self.max_wait_s

    def next_plan(self, queue: RequestQueue) -> BatchPlan | None:
        """Cut one batch off the queue head (None when empty)."""
        requests = queue.pop_upto(self.max_batch)
        if not requests:
            return None
        return BatchPlan(requests=tuple(requests), max_batch=self.max_batch)

    def demand(self, queue: RequestQueue) -> int:
        """Batches a full drain of the current queue will run.

        The server keys pool provisioning off this: the demand plan for
        ``demand()`` batches of the fixed ``max_batch`` shape is exactly
        the offline material the drain will consume.
        """
        return math.ceil(queue.depth_rows / self.max_batch)
