"""Deprecation shim: the single-server API over :class:`Replica`.

The serving engine now lives in :mod:`repro.serve.replica` behind the
replica protocol (``submit / poll / drain / stats``) the fleet router
speaks; :class:`SecureInferenceServer` is kept as a thin subclass so the
original one-deployment API keeps working unchanged.  Constructing one
emits a :class:`DeprecationWarning` (once per process), as do the two
renamed keywords:

* ``max_queue_rows``  -> ``queue_rows``
* ``max_request_retries`` -> ``request_retries``

New code should use :class:`~repro.serve.replica.Replica` directly, or
:func:`repro.api.serve` for a routed fleet.
"""

from __future__ import annotations

from repro.serve.replica import InferenceResponse, Replica, ServeReport
from repro.util.deprecation import warn_deprecated

__all__ = ["InferenceResponse", "SecureInferenceServer", "ServeReport"]


class SecureInferenceServer(Replica):
    """Single-deployment serving API, now a shim over :class:`Replica`."""

    def __init__(
        self,
        ctx,
        model,
        *,
        max_batch: int = 64,
        max_wait_s: float = 1e-3,
        max_queue_rows: int | None = None,
        max_request_retries: int | None = None,
        queue_rows: int | None = None,
        request_retries: int = 2,
        audit: bool = False,
    ):
        warn_deprecated(
            "serve.SecureInferenceServer",
            "SecureInferenceServer is deprecated; use repro.serve.Replica for a "
            "single deployment or repro.api.serve(...) for a routed fleet",
        )
        if max_queue_rows is not None:
            warn_deprecated(
                "serve.SecureInferenceServer.max_queue_rows",
                "the max_queue_rows keyword is deprecated; spell it queue_rows",
            )
            if queue_rows is None:
                queue_rows = max_queue_rows
        if max_request_retries is not None:
            warn_deprecated(
                "serve.SecureInferenceServer.max_request_retries",
                "the max_request_retries keyword is deprecated; spell it request_retries",
            )
            request_retries = max_request_retries
        super().__init__(
            ctx,
            model,
            name="server",
            max_batch=max_batch,
            max_wait_s=max_wait_s,
            queue_rows=queue_rows,
            request_retries=request_retries,
            audit=audit,
        )

    @property
    def max_request_retries(self) -> int:
        """Deprecated alias for :attr:`request_retries`."""
        return self.request_retries
