"""Pluggable replica placement for the serving fleet.

A placement policy turns ``(client_id, live replicas)`` into a
*preference order* — the router tries the first choice, failing over
down the list on queue-full backpressure.  Two built-ins:

* :class:`ConsistentHashPlacement` (``"hash"``) — a blake2b hash ring
  with virtual nodes.  A client's requests stick to one replica
  (session affinity: its offline material, mask-reuse caches, and
  compressor state stay warm), and adding or removing a replica moves
  only the clients whose ring owner changed — everyone else stays put.
* :class:`LeastDepthPlacement` (``"least-depth"``) — greedy
  least-queue-depth, read from each replica's ``serve.queue_depth_rows``
  telemetry gauge; maximises fill/balance at the cost of affinity.

Policies only ever see the replicas the router considers *healthy* — a
crashed replica is filtered out before ranking, so no policy can route
to one.  Policies are duck-typed on ``name`` / ``queued_rows``, so
tests can rank lightweight stand-ins without a live deployment.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.util.errors import ConfigError


def _token(key: str) -> int:
    """Stable 64-bit placement hash (process-independent, unlike hash())."""
    return int.from_bytes(
        hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(), "big"
    )


class PlacementPolicy:
    """Base class: rank live replicas for one client's request."""

    name = "base"

    def add_replica(self, replica_name: str) -> None:
        """A replica joined the fleet (hash rings grow their tokens here)."""

    def remove_replica(self, replica_name: str) -> None:
        """A replica left the fleet (retired or permanently removed)."""

    def rank(self, client_id: str, replicas: list) -> list:
        """Preference-ordered replicas for ``client_id`` (best first).

        ``replicas`` are the healthy replicas only; the router never
        offers a crashed one.
        """
        raise NotImplementedError


class ConsistentHashPlacement(PlacementPolicy):
    """Blake2b hash ring with virtual nodes: stable session affinity."""

    name = "hash"

    def __init__(self, *, vnodes: int = 64):
        if vnodes < 1:
            raise ConfigError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self._ring: list[tuple[int, str]] = []  # sorted (token, replica name)

    def add_replica(self, replica_name: str) -> None:
        for v in range(self.vnodes):
            bisect.insort(self._ring, (_token(f"{replica_name}#{v}"), replica_name))

    def remove_replica(self, replica_name: str) -> None:
        self._ring = [entry for entry in self._ring if entry[1] != replica_name]

    def owner(self, client_id: str, names: list[str]) -> str | None:
        """The first replica in ``names`` met walking the ring clockwise."""
        order = self._walk(client_id, set(names))
        return order[0] if order else None

    def _walk(self, client_id: str, candidates: set[str]) -> list[str]:
        """Distinct candidate names in ring order from the client's token."""
        if not self._ring or not candidates:
            return []
        start = bisect.bisect_right(self._ring, (_token(str(client_id)), ""))
        seen: list[str] = []
        for i in range(len(self._ring)):
            name = self._ring[(start + i) % len(self._ring)][1]
            if name in candidates and name not in seen:
                seen.append(name)
                if len(seen) == len(candidates):
                    break
        return seen

    def rank(self, client_id: str, replicas: list) -> list:
        by_name = {r.name: r for r in replicas}
        order = [by_name[n] for n in self._walk(client_id, set(by_name))]
        # replicas never registered on the ring go last (defensive)
        order.extend(r for r in replicas if r not in order)
        return order


class LeastDepthPlacement(PlacementPolicy):
    """Route to the emptiest queue, by the ``serve.queue_depth_rows`` gauge."""

    name = "least-depth"

    def rank(self, client_id: str, replicas: list) -> list:
        return sorted(replicas, key=lambda r: (r.queued_rows, r.name))


_POLICIES = {
    "hash": ConsistentHashPlacement,
    "least-depth": LeastDepthPlacement,
    "least_depth": LeastDepthPlacement,
}


def make_placement(policy) -> PlacementPolicy:
    """Resolve a policy name (``"hash"`` / ``"least-depth"``) or instance."""
    if isinstance(policy, PlacementPolicy):
        return policy
    try:
        return _POLICIES[str(policy)]()
    except KeyError:
        raise ConfigError(
            f"unknown placement policy {policy!r}; choose from "
            f"{sorted(set(_POLICIES))} or pass a PlacementPolicy"
        ) from None
