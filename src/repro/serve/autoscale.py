"""Latency-watermark autoscaling for the serving fleet.

The autoscaler reads one signal — the fleet-wide p95 request latency
over a sliding window of completed responses — and compares it against
two configurable watermarks: above ``high_p95_s`` it adds a replica,
below ``low_p95_s`` it retires the emptiest one (draining it first, so
scaling down never drops a request).  A cooldown in ticks stops it from
thrashing while a just-added replica is still warming up its queue.

The fleet calls :meth:`FleetAutoscaler.tick` once per pump cycle; the
autoscaler never owns replicas itself — it only asks the fleet to
``add_replica()`` / ``retire_replica()``, so every scaling action goes
through the same journaled, conformance-auditable paths as manual ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ConfigError


@dataclass(frozen=True)
class AutoscalePolicy:
    """Watermarks and bounds for :class:`FleetAutoscaler`."""

    high_p95_s: float  # scale up when fleet p95 exceeds this
    low_p95_s: float  # scale down when fleet p95 is under this
    min_replicas: int = 1
    max_replicas: int = 8
    window: int = 32  # responses considered for the fleet p95
    cooldown_ticks: int = 2  # ticks between scaling actions

    def __post_init__(self):
        if self.low_p95_s < 0 or self.high_p95_s <= self.low_p95_s:
            raise ConfigError(
                f"watermarks must satisfy 0 <= low < high, got "
                f"low={self.low_p95_s} high={self.high_p95_s}"
            )
        if not 1 <= self.min_replicas <= self.max_replicas:
            raise ConfigError(
                f"need 1 <= min_replicas <= max_replicas, got "
                f"{self.min_replicas}..{self.max_replicas}"
            )
        if self.window < 1:
            raise ConfigError(f"window must be >= 1, got {self.window}")


class FleetAutoscaler:
    """Add/retire replicas when fleet p95 latency crosses the watermarks."""

    def __init__(self, fleet, policy: AutoscalePolicy):
        self.fleet = fleet
        self.policy = policy
        self._ticks = 0
        self._last_action_tick = -policy.cooldown_ticks
        t = fleet.telemetry
        self._actions = t.counter(
            "fleet.autoscale.actions", "autoscaler decisions, by direction"
        )
        self._p95_gauge = t.gauge(
            "fleet.autoscale.p95_seconds", "fleet p95 latency at last tick"
        )

    def fleet_p95(self) -> float | None:
        """p95 latency over the last ``window`` responses (None if none)."""
        recent = self.fleet.responses[-self.policy.window:]
        if not recent:
            return None
        return float(np.quantile([r.latency_s for r in recent], 0.95))

    def tick(self) -> str | None:
        """One autoscaling decision; returns "up", "down", or None."""
        self._ticks += 1
        p95 = self.fleet_p95()
        if p95 is None:
            return None
        self._p95_gauge.set(p95)
        if self._ticks - self._last_action_tick < self.policy.cooldown_ticks:
            return None
        n = len(self.fleet.replicas())
        if p95 > self.policy.high_p95_s and n < self.policy.max_replicas:
            self.fleet.add_replica()
            self._last_action_tick = self._ticks
            self._actions.inc(1, direction="up")
            return "up"
        if p95 < self.policy.low_p95_s and n > self.policy.min_replicas:
            self.fleet.retire_replica()
            self._last_action_tick = self._ticks
            self._actions.inc(1, direction="down")
            return "down"
        return None
