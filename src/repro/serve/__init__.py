"""repro.serve — secure inference serving over one SecureContext.

The service-shaped API around the fixed inference driver: a bounded
:class:`RequestQueue` with retryable admission control, an
:class:`AdaptiveBatcher` coalescing requests into fixed-shape batches
(pad-and-trim, so ragged tails are served, never dropped), and a
:class:`SecureInferenceServer` that multiplexes many logical clients
over one secure deployment with pool-backed offline provisioning,
per-request latency spans (p50/p95/p99 via the telemetry histogram
registry) and the fault-retry/blame machinery from :mod:`repro.faults`.

Quickstart::

    import repro
    from repro.serve import SecureInferenceServer

    ctx = repro.api.session()
    model = repro.SecureMLP(ctx, 64, hidden=(32,), n_out=10)
    server = SecureInferenceServer(ctx, model, max_batch=64)
    rid = server.submit("client-a", x_rows)     # QueueFullError = back off
    server.drain()                              # or pump() per event-loop tick
    report = server.report()                    # responses + p50/p95/p99
"""

from repro.serve.batcher import AdaptiveBatcher, BatchPlan
from repro.serve.queue import InferenceRequest, RequestQueue
from repro.serve.server import InferenceResponse, SecureInferenceServer, ServeReport
from repro.util.errors import QueueFullError, ServeError

__all__ = [
    "AdaptiveBatcher",
    "BatchPlan",
    "InferenceRequest",
    "InferenceResponse",
    "RequestQueue",
    "SecureInferenceServer",
    "ServeReport",
    "QueueFullError",
    "ServeError",
]
