"""repro.serve — secure inference serving, from one replica to a fleet.

The serving stack in layers:

* **Replica** (:mod:`repro.serve.replica`) — one secure deployment
  (its own server pair, triplet pool, clocks) behind the replica
  protocol ``submit / poll / drain / stats``: a bounded
  :class:`RequestQueue` with retryable admission control, an
  :class:`AdaptiveBatcher` coalescing requests into fixed-shape batches
  (pad-and-trim, so ragged tails are served, never dropped),
  per-request latency spans (p50/p95/p99 via the telemetry histogram
  registry) and the fault-retry/blame machinery from :mod:`repro.faults`.
* **Fleet** (:mod:`repro.serve.fleet`) — N replicas behind a
  :class:`FleetRouter` with pluggable placement
  (:mod:`repro.serve.placement`: consistent-hash affinity or
  least-queue-depth), one shared :class:`DealerService` provisioning
  every pool from aggregated offline demand, crash recovery that
  re-routes admitted requests (exactly-once, zero drops), an optional
  p95-watermark autoscaler (:mod:`repro.serve.autoscale`), and a
  journal-replay conformance oracle (:func:`replay_replica_journal`).
* **Shim** (:mod:`repro.serve.server`) — the original
  :class:`SecureInferenceServer` API, now a deprecation shim over
  :class:`Replica`.

Quickstart::

    import repro

    fleet = repro.api.serve(
        lambda ctx: repro.SecureMLP(ctx, 64, hidden=(32,), n_out=10),
        replicas=4, placement="hash",
    )
    rid = fleet.submit("client-a", x_rows)      # QueueFullError = back off
    fleet.drain()                               # or pump() per event-loop tick
    report = fleet.report()                     # per-replica + fleet aggregate
"""

from repro.serve.autoscale import AutoscalePolicy, FleetAutoscaler
from repro.serve.batcher import AdaptiveBatcher, BatchPlan
from repro.serve.dealer import DealerService, demand_map
from repro.serve.fleet import (
    FleetReport,
    FleetResponse,
    FleetRouter,
    FleetTicket,
    SecureServingFleet,
    replay_replica_journal,
)
from repro.serve.placement import (
    ConsistentHashPlacement,
    LeastDepthPlacement,
    PlacementPolicy,
    make_placement,
)
from repro.serve.queue import InferenceRequest, RequestQueue
from repro.serve.replica import InferenceResponse, Replica, ReplicaStats, ServeReport
from repro.serve.server import SecureInferenceServer
from repro.util.errors import QueueFullError, ServeError

__all__ = [
    # replica layer
    "AdaptiveBatcher",
    "BatchPlan",
    "InferenceRequest",
    "InferenceResponse",
    "Replica",
    "ReplicaStats",
    "RequestQueue",
    "ServeReport",
    # fleet layer
    "AutoscalePolicy",
    "ConsistentHashPlacement",
    "DealerService",
    "FleetAutoscaler",
    "FleetReport",
    "FleetResponse",
    "FleetRouter",
    "FleetTicket",
    "LeastDepthPlacement",
    "PlacementPolicy",
    "SecureServingFleet",
    "demand_map",
    "make_placement",
    "replay_replica_journal",
    # deprecation shim
    "SecureInferenceServer",
    # errors
    "QueueFullError",
    "ServeError",
]
