"""Bounded admission queue for the secure inference service.

The queue is the backpressure boundary: clients submit
already-secret-shared requests, admission control enforces a bounded
depth (in *rows*, the unit the batcher coalesces), and a full queue
rejects with the retryable :class:`~repro.util.errors.QueueFullError` —
nothing is enqueued, no offline material is consumed, and the client can
back off and resubmit.  Everything behind the queue (batching, padding,
retries) is the server's problem; a request that *is* admitted is never
dropped.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.tensor import SharedTensor
from repro.telemetry.registry import MetricRegistry
from repro.util.errors import ConfigError, QueueFullError


@dataclass
class InferenceRequest:
    """One logical client's admitted query: shared rows plus arrival time.

    ``x`` is the secret-shared input (shared at submit time, on the
    offline clock, exactly like a dataset share); ``enqueue_t`` is the
    online-clock time of admission, the start of the request's latency
    span.
    """

    client_id: str
    request_id: int
    x: SharedTensor
    enqueue_t: float

    @property
    def rows(self) -> int:
        return self.x.shape[0]

    # filled in by the server as the request moves through its spans
    dequeue_t: float = field(default=0.0, compare=False)


class RequestQueue:
    """FIFO of admitted requests with row-bounded admission control."""

    def __init__(self, *, max_rows: int, telemetry=None):
        if max_rows < 1:
            raise ConfigError(f"queue max_rows must be >= 1, got {max_rows}")
        self.max_rows = int(max_rows)
        self._queue: deque[InferenceRequest] = deque()
        self._depth_rows = 0
        registry = telemetry.registry if telemetry is not None else MetricRegistry()
        self._admitted = registry.counter(
            "serve.requests_admitted", "requests accepted into the serving queue"
        )
        self._rejected = registry.counter(
            "serve.requests_rejected", "requests refused by admission control (retryable)"
        )
        self._depth_gauge = registry.gauge(
            "serve.queue_depth_rows", "input rows currently queued"
        )

    # -- admission --------------------------------------------------------------

    def check_admission(self, client_id: str, rows: int) -> None:
        """Raise :class:`QueueFullError` if ``rows`` would not fit.

        Called by the server *before* the request's sharing cost is
        paid, so a rejected client loses nothing but the round trip.
        """
        if self._depth_rows + rows > self.max_rows:
            self._rejected.inc(1, client=client_id)
            raise QueueFullError(
                f"queue full: {self._depth_rows}/{self.max_rows} rows queued, "
                f"request from {client_id!r} needs {rows}; back off and resubmit"
            )

    def admit(self, request: InferenceRequest) -> None:
        """Enqueue or raise :class:`QueueFullError` (retryable, no side effects)."""
        self.check_admission(request.client_id, request.rows)
        self._queue.append(request)
        self._depth_rows += request.rows
        self._admitted.inc(1, client=request.client_id)
        self._depth_gauge.set(self._depth_rows)

    def requeue_front(self, request: InferenceRequest) -> None:
        """Return an already-admitted request to the queue head.

        Recovery path only (a batch that exhausted its retry budget):
        bypasses admission control — the request was already admitted
        once and must not be lost to backpressure.
        """
        self._queue.appendleft(request)
        self._depth_rows += request.rows
        self._depth_gauge.set(self._depth_rows)

    def admit_forced(self, request: InferenceRequest) -> None:
        """Enqueue at the tail bypassing the row bound.

        Recovery path only (a request re-routed off a crashed replica):
        the request was already admitted into the fleet once and must
        not be lost to backpressure on its new home.
        """
        self._queue.append(request)
        self._depth_rows += request.rows
        self._admitted.inc(1, client=request.client_id)
        self._depth_gauge.set(self._depth_rows)

    def take_all(self) -> list[InferenceRequest]:
        """Remove and return every queued request (crash-drain path)."""
        taken = list(self._queue)
        self._queue.clear()
        self._depth_rows = 0
        self._depth_gauge.set(0)
        return taken

    # -- consumption (batcher side) ---------------------------------------------

    def pop_upto(self, max_rows: int) -> list[InferenceRequest]:
        """Pop whole requests FIFO while they fit in ``max_rows``.

        Requests are never split: the head request always fits because
        admission (via the server) caps request size at the batch size.
        """
        taken: list[InferenceRequest] = []
        rows = 0
        while self._queue and rows + self._queue[0].rows <= max_rows:
            req = self._queue.popleft()
            rows += req.rows
            taken.append(req)
        self._depth_rows -= rows
        self._depth_gauge.set(self._depth_rows)
        return taken

    # -- introspection ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def depth_rows(self) -> int:
        return self._depth_rows

    def oldest_enqueue_t(self) -> float | None:
        """Admission time of the head request (None when empty)."""
        return self._queue[0].enqueue_t if self._queue else None
