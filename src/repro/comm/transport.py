"""In-process transport: MPI-like ordered point-to-point messaging.

The paper's client and two servers talk over MPI; here all three run in
one process, each as a :class:`~repro.core.parties` role object, and the
:class:`TransportHub` gives them the same communication surface mpi4py
would: ``send(dst, tag, payload)`` / ``recv(src, tag)`` with per-(src,
dst, tag) FIFO ordering.

Physical time is *not* modelled here — payloads are delivered
immediately so the lockstep protocol simulation can proceed — it is
charged separately on the :class:`~repro.comm.channel.Channel` by the
caller, which knows the wire size (possibly compressed) and the
dependency structure.  Keeping "what was said" (transport) apart from
"what it cost" (channel) is what lets the same protocol code run under
different network models.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.util.errors import TransportError


@dataclass
class _Envelope:
    src: str
    dst: str
    tag: str
    payload: Any


class Mailbox:
    """One endpoint's receive queues, keyed by (src, tag)."""

    def __init__(self, owner: str):
        self.owner = owner
        self._queues: dict[tuple[str, str], deque] = {}

    def _queue(self, src: str, tag: str) -> deque:
        return self._queues.setdefault((src, tag), deque())

    def deliver(self, env: _Envelope) -> None:
        self._queue(env.src, env.tag).append(env.payload)

    def recv(self, src: str, tag: str) -> Any:
        """Pop the oldest message from ``src`` with ``tag``.

        Raises :class:`TransportError` when nothing is pending — in the
        lockstep simulation a missing message is always a protocol bug,
        so failing loudly beats blocking forever.  The error lists what
        *is* queued, so a misrouted tag is diagnosable from the message.
        """
        q = self._queue(src, tag)
        if not q:
            waiting = self.pending_summary()
            detail = (
                "; pending queues: "
                + ", ".join(f"({s!r}, {t!r})x{n}" for (s, t), n in sorted(waiting.items()))
                if waiting
                else "; mailbox is empty"
            )
            raise TransportError(
                f"{self.owner}: no pending message from {src!r} with tag {tag!r}{detail}"
            )
        return q.popleft()

    def pending(self, src: str | None = None, tag: str | None = None) -> int:
        """Queued message count, over the whole mailbox or one filter.

        ``pending()`` totals everything (the actors' idle assertions),
        ``pending(src, tag)`` counts one stream; ``src`` and ``tag``
        filter independently.
        """
        return sum(
            len(q)
            for (s, t), q in self._queues.items()
            if (src is None or s == src) and (tag is None or t == tag)
        )

    def peek(self, src: str, tag: str) -> Any:
        """The next payload from ``(src, tag)`` without consuming it."""
        q = self._queue(src, tag)
        if not q:
            raise TransportError(
                f"{self.owner}: nothing to peek from {src!r} with tag {tag!r}"
            )
        return q[0]

    def pending_summary(self) -> dict[tuple[str, str], int]:
        """Non-empty ``(src, tag) -> count`` map (introspection surface)."""
        return {key: len(q) for key, q in self._queues.items() if q}


class TransportHub:
    """Connects a fixed set of endpoints with reliable FIFO delivery."""

    def __init__(self, endpoints: list[str]):
        if len(set(endpoints)) != len(endpoints):
            raise TransportError(f"duplicate endpoint names: {endpoints}")
        self.mailboxes = {name: Mailbox(name) for name in endpoints}
        self.messages_delivered = 0
        self._taps: list[Any] = []

    def add_tap(self, tap) -> None:
        """Register an observer called as ``tap(src, dst, tag, payload)``
        on every delivered message — including retransmissions and
        duplicates, which never reach ``recv`` but do cross the wire.
        The transcript recorder attaches here."""
        self._taps.append(tap)

    def remove_tap(self, tap) -> None:
        self._taps.remove(tap)

    def send(self, src: str, dst: str, tag: str, payload: Any) -> None:
        if src not in self.mailboxes:
            raise TransportError(f"unknown sender {src!r}")
        if dst not in self.mailboxes:
            raise TransportError(f"unknown recipient {dst!r}")
        if src == dst:
            raise TransportError(f"{src!r} attempted to message itself")
        for tap in self._taps:
            tap(src, dst, tag, payload)
        self.mailboxes[dst].deliver(_Envelope(src=src, dst=dst, tag=tag, payload=payload))
        self.messages_delivered += 1

    def recv(self, dst: str, src: str, tag: str) -> Any:
        return self.mailboxes[dst].recv(src, tag)

    def exchange(self, a: str, b: str, tag: str, payload_a: Any, payload_b: Any) -> tuple[Any, Any]:
        """Symmetric swap: ``a`` sends to ``b`` and vice versa, then both
        receive.  The pattern of the paper's Eq. 5 reconstruct round."""
        self.send(a, b, tag, payload_a)
        self.send(b, a, tag, payload_b)
        return self.recv(a, b, tag), self.recv(b, a, tag)
