"""Simulated network links with byte-exact accounting.

A :class:`Channel` is a full-duplex point-to-point link between two named
endpoints.  Each direction is its own serial resource on the shared
:class:`~repro.simgpu.clock.SimClock`, so two servers exchanging their
``E_i``/``F_i`` halves simultaneously (paper Eq. 5) genuinely overlap —
exactly the behaviour of the paper's InfiniBand fabric.

Transfer time = per-message latency + bytes / bandwidth.  Every byte is
also tallied in :attr:`bytes_sent`, which is what the compression
experiment (Fig. 16) reads out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simgpu.clock import SimClock, Task
from repro.util.errors import TransportError
from repro.util.validation import check_positive


@dataclass(frozen=True)
class LinkSpec:
    """Physical parameters of a link."""

    name: str
    bandwidth_gbps: float  # GB/s (bytes, not bits)
    latency_s: float

    def transfer_seconds(self, nbytes: float) -> float:
        return self.latency_s + nbytes / (self.bandwidth_gbps * 1e9)


# 100 Gb/s 4xEDR InfiniBand (paper Section 7.1): ~12.5 GB/s, ~1.5 us MPI latency.
INFINIBAND_100G = LinkSpec(name="4xEDR-IB", bandwidth_gbps=12.0, latency_s=1.5e-6)
# A slower option for sensitivity studies (SecureML's original EC2-style LAN).
ETHERNET_10G = LinkSpec(name="10GbE", bandwidth_gbps=1.1, latency_s=30e-6)


class Channel:
    """Full-duplex link between endpoints ``a`` and ``b``."""

    def __init__(self, clock: SimClock, spec: LinkSpec, a: str, b: str):
        self.clock = clock
        self.spec = spec
        self.a = a
        self.b = b
        self._dir = {
            (a, b): f"link.{a}->{b}",
            (b, a): f"link.{b}->{a}",
        }
        for res in self._dir.values():
            clock.add_resource(res)
        self.bytes_sent: dict[tuple[str, str], int] = {(a, b): 0, (b, a): 0}
        self.messages_sent: dict[tuple[str, str], int] = {(a, b): 0, (b, a): 0}

    def send(self, src: str, dst: str, nbytes: int, deps=(), label: str = "msg") -> Task:
        """Charge one message of ``nbytes`` from ``src`` to ``dst``.

        Returns the delivery task; the receiver's next step should depend
        on it.
        """
        key = (src, dst)
        if key not in self._dir:
            raise TransportError(
                f"channel {self.a}<->{self.b} does not connect {src} to {dst}"
            )
        if nbytes < 0:
            raise TransportError(f"negative message size {nbytes}")
        self.bytes_sent[key] += int(nbytes)
        self.messages_sent[key] += 1
        return self.clock.run(
            self._dir[key], self.spec.transfer_seconds(nbytes), deps=deps, label=label
        )

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_sent.values())

    @property
    def total_messages(self) -> int:
        return sum(self.messages_sent.values())

    def reset_counters(self) -> None:
        for key in self.bytes_sent:
            self.bytes_sent[key] = 0
            self.messages_sent[key] = 0
