"""Simulated network links with byte-exact accounting.

A :class:`Channel` is a full-duplex point-to-point link between two named
endpoints.  Each direction is its own serial resource on the shared
:class:`~repro.simgpu.clock.SimClock`, so two servers exchanging their
``E_i``/``F_i`` halves simultaneously (paper Eq. 5) genuinely overlap —
exactly the behaviour of the paper's InfiniBand fabric.

Transfer time = per-message latency + bytes / bandwidth.  Every byte is
tallied in the telemetry registry under ``comm.bytes`` /
``comm.messages`` / ``comm.link_busy_seconds`` (labelled by channel and
direction); the historical :attr:`bytes_sent` / :attr:`messages_sent`
dicts — what the compression experiment (Fig. 16) reads out — are kept
as thin views over those series.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simgpu.clock import SimClock, Task
from repro.telemetry.registry import MetricRegistry
from repro.util.errors import TransportError


@dataclass(frozen=True)
class LinkSpec:
    """Physical parameters of a link."""

    name: str
    bandwidth_gbps: float  # GB/s (bytes, not bits)
    latency_s: float

    def transfer_seconds(self, nbytes: float) -> float:
        return self.latency_s + nbytes / (self.bandwidth_gbps * 1e9)


# 100 Gb/s 4xEDR InfiniBand (paper Section 7.1): ~12.5 GB/s, ~1.5 us MPI latency.
INFINIBAND_100G = LinkSpec(name="4xEDR-IB", bandwidth_gbps=12.0, latency_s=1.5e-6)
# A slower option for sensitivity studies (SecureML's original EC2-style LAN).
ETHERNET_10G = LinkSpec(name="10GbE", bandwidth_gbps=1.1, latency_s=30e-6)


class Channel:
    """Full-duplex link between endpoints ``a`` and ``b``.

    ``telemetry`` (a :class:`~repro.telemetry.Telemetry`) shares one
    registry across the deployment; without it the channel keeps a
    private registry so standalone use stays self-accounting.
    """

    def __init__(self, clock: SimClock, spec: LinkSpec, a: str, b: str, *, telemetry=None):
        self.clock = clock
        self.spec = spec
        self.a = a
        self.b = b
        self.label = f"{a}<->{b}"
        self._dir = {
            (a, b): f"link.{a}->{b}",
            (b, a): f"link.{b}->{a}",
        }
        for res in self._dir.values():
            clock.add_resource(res)
        registry = telemetry.registry if telemetry is not None else MetricRegistry()
        self._bytes = registry.counter("comm.bytes", "wire bytes per link direction")
        self._messages = registry.counter("comm.messages", "messages per link direction")
        self._busy = registry.counter(
            "comm.link_busy_seconds", "per-direction link occupancy (busy seconds)"
        )
        self._frame_overhead = registry.counter(
            "comm.frame_overhead_bytes", "framed-codec header bytes per link direction"
        )
        self._coalesced = registry.counter(
            "comm.coalesced_messages", "messages absorbed into packed round frames"
        )

    def send(self, src: str, dst: str, nbytes: int, deps=(), label: str = "msg") -> Task:
        """Charge one message of ``nbytes`` from ``src`` to ``dst``.

        Returns the delivery task; the receiver's next step should depend
        on it.
        """
        key = (src, dst)
        if key not in self._dir:
            raise TransportError(
                f"channel {self.a}<->{self.b} does not connect {src} to {dst}"
            )
        if nbytes < 0:
            raise TransportError(f"negative message size {nbytes}")
        seconds = self.spec.transfer_seconds(nbytes)
        self._bytes.inc(int(nbytes), channel=self.label, src=src, dst=dst)
        self._messages.inc(1, channel=self.label, src=src, dst=dst)
        self._busy.inc(seconds, channel=self.label, src=src, dst=dst)
        return self.clock.run(self._dir[key], seconds, deps=deps, label=label)

    def send_framed(
        self, src: str, dst: str, sizes, deps=(), label: str = "frame", parts: int = 1
    ) -> Task:
        """Charge one *framed* message whose size came from the codec.

        ``sizes`` is a :class:`repro.comm.wire.FramedSizes`: the full
        frame (body + headers) is charged through :meth:`send` — so
        retransmission/fault semantics of subclasses apply unchanged —
        while the header share lands in ``comm.frame_overhead_bytes``.
        ``parts`` > 1 marks a packed round frame; the messages it
        absorbed (parts - 1) are tallied in ``comm.coalesced_messages``.
        """
        task = self.send(src, dst, sizes.nbytes, deps=deps, label=label)
        self._frame_overhead.inc(
            int(sizes.overhead_nbytes), channel=self.label, src=src, dst=dst
        )
        if parts > 1:
            self._coalesced.inc(parts - 1, channel=self.label, src=src, dst=dst)
        return task

    # -- thin views over the registry (historical counter surface) -------------

    def _view(self, counter) -> dict[tuple[str, str], int]:
        return {
            key: int(counter.value(channel=self.label, src=key[0], dst=key[1]))
            for key in self._dir
        }

    @property
    def bytes_sent(self) -> dict[tuple[str, str], int]:
        return self._view(self._bytes)

    @property
    def messages_sent(self) -> dict[tuple[str, str], int]:
        return self._view(self._messages)

    def busy_seconds(self, src: str, dst: str) -> float:
        """Accumulated occupancy of one direction of the link."""
        return self._busy.value(channel=self.label, src=src, dst=dst)

    @property
    def total_bytes(self) -> int:
        return int(self._bytes.value(channel=self.label))

    @property
    def total_messages(self) -> int:
        return int(self._messages.value(channel=self.label))

    def reset_counters(self) -> None:
        for counter in (self._bytes, self._messages, self._busy):
            counter.reset(channel=self.label)
