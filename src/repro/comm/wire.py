"""Zero-copy framed wire codec + per-round message coalescing.

The online hot path used to hand Python objects to the transport and
charge separately-estimated byte counts on the channels.  This module
makes the wire form explicit:

* **Frame codec** — ``encode_frame`` / ``decode_frame`` serialize a
  message as a fixed header (magic, tag, part kinds, dtype, shape)
  followed by the raw ``tobytes()`` buffers of its arrays.  Encoding is
  zero-copy: array bodies travel as memoryviews into the original
  buffers (never copied through pickle), and decoding returns
  ``np.frombuffer`` views into the received frame.  Pickle is the
  escape hatch only for leaves that are not arrays/bytes/sequences —
  and even then protocol 5 with out-of-band buffers keeps any arrays
  *inside* such leaves out of the pickle stream.
* **Exact sizing** — :func:`frame_sizes` computes a frame's wire size
  without materializing it, split into body (raw buffer bytes) and
  overhead (headers), so channels charge what actually crosses the
  transport and telemetry can report ``comm.frame_overhead_bytes``.
* **Fast checksums** — :func:`payload_checksum` CRCs the frame chunks
  incrementally (raw array buffers, no per-message ``pickle.dumps``),
  replacing the ReliableTransport hotspot.
* **Round coalescing** — :class:`RoundCoalescer` packs small same-round
  messages per directed link into one framed message (the Eq. 5 E/F
  pair being the dominant case), amortizing per-message latency.  A
  packed frame's body is the exact concatenation of its parts' bodies,
  which is what makes coalescing auditable: the per-link concatenated
  content stream is invariant (see ``repro.audit``).

The *canonical encoding* used for transcript digests
(:func:`canonical_bytes`) also lives here — it predates the frame codec
and its byte format is pinned by committed reference transcripts, so it
is kept verbatim and re-exported by :mod:`repro.audit.transcript`.
"""

from __future__ import annotations

import hashlib
import pickle
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from repro.util.errors import TransportError

# --------------------------------------------------------------------------
# Canonical encoding (transcript digests).  BYTE FORMAT IS PINNED: committed
# reference transcripts (tests/data/*.json) store digests over exactly these
# bytes — change the frame codec freely, never this encoding.
# --------------------------------------------------------------------------


def iter_arrays(obj: Any) -> Iterator[np.ndarray]:
    """Yield every ndarray reachable inside ``obj`` (depth-first).

    Mirrors the traversal the fault injector uses when corrupting
    payloads, so the auditor sees exactly the mutable wire content.
    """
    if isinstance(obj, np.ndarray):
        yield obj
    elif isinstance(obj, dict):
        for v in obj.values():
            yield from iter_arrays(v)
    elif isinstance(obj, (list, tuple)):
        for v in obj:
            yield from iter_arrays(v)
    elif hasattr(obj, "__dict__"):
        for v in vars(obj).values():
            yield from iter_arrays(v)


def canonical_bytes(payload: Any) -> bytes:
    """A deterministic byte encoding of a message payload.

    Arrays hash as ``dtype|shape|buffer`` so a reshape or cast can never
    collide with the original; everything else falls back to pickle at a
    pinned protocol version.
    """
    if isinstance(payload, np.ndarray):
        arr = np.ascontiguousarray(payload)
        header = f"ndarray|{arr.dtype.str}|{arr.shape}|".encode()
        return header + arr.tobytes()
    if isinstance(payload, (bytes, bytearray)):
        return b"bytes|" + bytes(payload)
    if isinstance(payload, (list, tuple)) and payload and all(
        isinstance(p, np.ndarray) for p in payload
    ):
        return b"seq|" + b"".join(canonical_bytes(p) for p in payload)
    return b"pickle|" + pickle.dumps(payload, protocol=4)


def content_bytes(payload: Any) -> bytes:
    """The raw observable buffer bytes of ``payload`` (for wire audits)."""
    if isinstance(payload, (bytes, bytearray)):
        return bytes(payload)
    return b"".join(np.ascontiguousarray(a).tobytes() for a in iter_arrays(payload))


def payload_digest(payload: Any) -> str:
    return hashlib.blake2b(canonical_bytes(payload), digest_size=16).hexdigest()


# --------------------------------------------------------------------------
# Frame codec
# --------------------------------------------------------------------------

#: Frame magic: "RePro Wire" + format version.
MAGIC = b"RPW1"

_KIND_ND = 0
_KIND_BYTES = 1
_KIND_LIST = 2
_KIND_TUPLE = 3
_KIND_NONE = 4
_KIND_STR = 5
_KIND_PICKLE = 6

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")


def _array_body(arr: np.ndarray) -> memoryview:
    """A flat byte view of a contiguous array (no copy)."""
    if arr.size == 0:
        return memoryview(b"")
    return memoryview(np.ascontiguousarray(arr)).cast("B")


def _emit(payload: Any, chunks: list) -> None:
    """Append one payload's encoded chunks.

    Invariant the sizing/overhead accounting relies on: header chunks
    are ``bytes``, raw buffer bodies are ``memoryview`` — a chunk's type
    says which side of the body/overhead split it lands on.
    """
    if isinstance(payload, np.ndarray) and not payload.dtype.hasobject:
        dt = payload.dtype.str.encode("ascii")
        head = bytearray(_U8.pack(_KIND_ND))
        head += _U8.pack(len(dt))
        head += dt
        head += _U8.pack(payload.ndim)
        for dim in payload.shape:
            head += _I64.pack(dim)
        chunks.append(bytes(head))
        chunks.append(_array_body(payload))
        return
    if isinstance(payload, (bytes, bytearray)):
        chunks.append(_U8.pack(_KIND_BYTES) + _U64.pack(len(payload)))
        chunks.append(memoryview(bytes(payload)))
        return
    if isinstance(payload, (list, tuple)):
        kind = _KIND_LIST if isinstance(payload, list) else _KIND_TUPLE
        chunks.append(_U8.pack(kind) + _U32.pack(len(payload)))
        for item in payload:
            _emit(item, chunks)
        return
    if payload is None:
        chunks.append(_U8.pack(_KIND_NONE))
        return
    if isinstance(payload, str):
        body = payload.encode("utf-8")
        chunks.append(_U8.pack(_KIND_STR) + _U32.pack(len(body)) + body)
        return
    # Escape hatch: pickle the leaf, but keep any arrays inside it out of
    # the pickle stream via protocol-5 out-of-band buffers (raw bodies).
    buffers: list = []
    skeleton = pickle.dumps(payload, protocol=5, buffer_callback=buffers.append)
    chunks.append(
        _U8.pack(_KIND_PICKLE) + _U64.pack(len(skeleton)) + skeleton + _U32.pack(len(buffers))
    )
    for buf in buffers:
        view = buf.raw() if hasattr(buf, "raw") else memoryview(buf)
        chunks.append(_U64.pack(view.nbytes))
        chunks.append(view)


def _frame_chunks(tag: str, payload: Any) -> list:
    tag_bytes = tag.encode("utf-8")
    if len(tag_bytes) > 0xFFFF:
        raise TransportError(f"frame tag too long ({len(tag_bytes)} bytes)")
    chunks: list = [MAGIC + _U8.pack(0) + _U16.pack(len(tag_bytes)) + tag_bytes]
    _emit(payload, chunks)
    return chunks


def encode_frame(tag: str, payload: Any) -> bytes:
    """Serialize one message as a framed byte string."""
    return b"".join(_frame_chunks(tag, payload))


@dataclass(frozen=True)
class FramedSizes:
    """Exact wire size of a frame, split body vs header overhead."""

    nbytes: int
    body_nbytes: int

    @property
    def overhead_nbytes(self) -> int:
        return self.nbytes - self.body_nbytes


def frame_sizes(tag: str, payload: Any) -> FramedSizes:
    """Wire size of ``encode_frame(tag, payload)`` without building it.

    Body = raw buffer bytes (array/bytes/out-of-band pickle buffers);
    overhead = everything else (magic, tag, kinds, dtypes, shapes,
    pickle skeletons).
    """
    body = 0
    total = 0
    for chunk in _frame_chunks(tag, payload):
        if isinstance(chunk, memoryview):
            body += chunk.nbytes
            total += chunk.nbytes
        else:
            total += len(chunk)
    return FramedSizes(nbytes=total, body_nbytes=body)


def blob_frame_sizes(tag: str, nbytes: int) -> FramedSizes:
    """Framed size of an opaque ``nbytes`` blob (size-only rounds).

    The GMW comparison traffic is costed in aggregate — its per-round
    bit content is never materialized — so it frames as one BYTES part.
    """
    header = len(MAGIC) + 1 + 2 + len(tag.encode("utf-8")) + 1 + 8
    return FramedSizes(nbytes=header + int(nbytes), body_nbytes=int(nbytes))


def payload_checksum(payload: Any) -> int:
    """CRC-32 over the framed encoding of ``payload``.

    Accumulated chunk-by-chunk: array buffers are hashed raw and never
    pass through ``pickle.dumps`` (the historical per-frame hotspot);
    pickle only fires for irreducible non-array leaves.  Checksums are
    compared within one process only — no cross-version stability is
    promised (transcript digests, which *are* pinned, use
    :func:`canonical_bytes`).
    """
    crc = 0
    for chunk in _frame_chunks("", payload):
        crc = zlib.crc32(chunk, crc)
    return crc


class _FrameReader:
    """Sequential parser over one encoded frame."""

    def __init__(self, data, copy: bool):
        self._view = memoryview(data).cast("B")
        self._pos = 0
        self._copy = copy

    def take(self, n: int) -> memoryview:
        if self._pos + n > len(self._view):
            raise TransportError("truncated frame")
        out = self._view[self._pos : self._pos + n]
        self._pos += n
        return out

    def u8(self) -> int:
        return _U8.unpack(self.take(1))[0]

    def u16(self) -> int:
        return _U16.unpack(self.take(2))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self.take(8))[0]

    def i64(self) -> int:
        return _I64.unpack(self.take(8))[0]

    @property
    def exhausted(self) -> bool:
        return self._pos == len(self._view)

    def value(self) -> Any:
        kind = self.u8()
        if kind == _KIND_ND:
            dt = np.dtype(bytes(self.take(self.u8())).decode("ascii"))
            shape = tuple(self.i64() for _ in range(self.u8()))
            nbytes = dt.itemsize * int(np.prod(shape, dtype=np.int64))
            body = self.take(nbytes)
            arr = np.frombuffer(body, dtype=dt).reshape(shape)
            return arr.copy() if self._copy else arr
        if kind == _KIND_BYTES:
            return bytes(self.take(self.u64()))
        if kind in (_KIND_LIST, _KIND_TUPLE):
            items = [self.value() for _ in range(self.u32())]
            return items if kind == _KIND_LIST else tuple(items)
        if kind == _KIND_NONE:
            return None
        if kind == _KIND_STR:
            return bytes(self.take(self.u32())).decode("utf-8")
        if kind == _KIND_PICKLE:
            skeleton = bytes(self.take(self.u64()))
            buffers = [self.take(self.u64()) for _ in range(self.u32())]
            return pickle.loads(skeleton, buffers=buffers)
        raise TransportError(f"unknown frame part kind {kind}")


def decode_frame(data, *, copy: bool = False) -> tuple[str, Any]:
    """Parse one frame back into ``(tag, payload)``.

    With ``copy=False`` (default) decoded arrays are read-only
    ``np.frombuffer`` views into ``data`` — zero-copy; pass
    ``copy=True`` for independent writable arrays.
    """
    reader = _FrameReader(data, copy)
    if bytes(reader.take(len(MAGIC))) != MAGIC:
        raise TransportError("bad frame magic")
    reader.u8()  # flags (reserved)
    tag = bytes(reader.take(reader.u16())).decode("utf-8")
    payload = reader.value()
    if not reader.exhausted:
        raise TransportError("trailing bytes after frame payload")
    return tag, payload


# --------------------------------------------------------------------------
# Round coalescing
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class PackedFrame:
    """All of one directed link's messages for one round, as one frame.

    The encoded form is a frame whose payload is the tuple of
    ``(tag, payload)`` pairs in send order, so the packed body is the
    exact concatenation of the parts' bodies — unpacking preserves both
    order and bits.
    """

    src: str
    dst: str
    round_id: str
    parts: tuple[tuple[str, Any], ...]

    @property
    def n_parts(self) -> int:
        return len(self.parts)

    @property
    def sizes(self) -> FramedSizes:
        return frame_sizes(self.round_id, self.parts)

    def encode(self) -> bytes:
        return encode_frame(self.round_id, self.parts)


def unpack_frame(data, *, copy: bool = False) -> tuple[str, tuple[tuple[str, Any], ...]]:
    """Inverse of :meth:`PackedFrame.encode`: ``(round_id, parts)``."""
    round_id, parts = decode_frame(data, copy=copy)
    return round_id, tuple(parts)


class RoundCoalescer:
    """Collects one round's sends and packs them per directed link.

    Protocol code ``add``s every message of a round (send order
    preserved per link), then ``flush``es to get one
    :class:`PackedFrame` per ``(src, dst)`` — links in first-send
    order.  The coalescer is pure packing machinery: charging the
    packed frame on a channel and recording it stays with the caller.
    """

    def __init__(self, round_id: str):
        self.round_id = round_id
        self._pending: dict[tuple[str, str], list[tuple[str, Any]]] = {}

    def __len__(self) -> int:
        return sum(len(parts) for parts in self._pending.values())

    def add(self, src: str, dst: str, tag: str, payload: Any) -> None:
        if src == dst:
            raise TransportError(f"coalescer: src == dst ({src!r})")
        self._pending.setdefault((src, dst), []).append((tag, payload))

    def flush(self) -> list[PackedFrame]:
        frames = [
            PackedFrame(src=src, dst=dst, round_id=self.round_id, parts=tuple(parts))
            for (src, dst), parts in self._pending.items()
        ]
        self._pending.clear()
        return frames


__all__ = [
    "MAGIC",
    "FramedSizes",
    "PackedFrame",
    "RoundCoalescer",
    "blob_frame_sizes",
    "canonical_bytes",
    "content_bytes",
    "decode_frame",
    "encode_frame",
    "frame_sizes",
    "iter_arrays",
    "payload_checksum",
    "payload_digest",
    "unpack_frame",
]
