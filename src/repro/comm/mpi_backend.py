"""MPI transport backend for real multi-node deployment.

The in-process :class:`~repro.comm.transport.TransportHub` is what the
lockstep simulation uses; this module provides the same ordered
point-to-point surface over **mpi4py**, so the protocol code can run
with the client and the two servers as separate ranks on a real
cluster::

    mpiexec -n 3 python my_secure_job.py     # rank 0 = client, 1-2 = servers

Design notes (following the mpi4py guidance this project was built
against):

* NumPy arrays travel via the buffer-based upper-case API
  (``Send``/``Recv``) — near-C speed, no pickling; each array message is
  preceded by a tiny pickled header carrying shape/dtype/tag;
* arbitrary payloads fall back to the pickle-based lower-case API;
* tags are hashed into the 15-bit MPI tag space, with the full tag
  string carried in the header to detect collisions loudly.

The module imports cleanly without mpi4py installed; constructing
:class:`MPITransport` then raises a clear error, and
:class:`LoopbackTransport` offers the identical interface in a single
process for tests and development.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.util.errors import TransportError

try:  # pragma: no cover - exercised only on MPI deployments
    from mpi4py import MPI  # type: ignore

    HAVE_MPI = True
except ImportError:  # pragma: no cover
    MPI = None
    HAVE_MPI = False


ROLE_BY_RANK = {0: "client", 1: "server0", 2: "server1"}
RANK_BY_ROLE = {v: k for k, v in ROLE_BY_RANK.items()}


def _mpi_tag(tag: str) -> int:
    """Stable 15-bit tag (the MPI standard guarantees at least 2^15-1)."""
    return (hash(tag) & 0x7FFF) or 1


@dataclass
class _Header:
    tag: str
    kind: str  # "array" | "object"
    shape: tuple | None = None
    dtype: str | None = None


class MPITransport:
    """Ordered point-to-point messaging between the three roles."""

    def __init__(self, comm=None):
        if not HAVE_MPI:
            raise TransportError(
                "mpi4py is not installed; use LoopbackTransport for "
                "single-process runs or install mpi4py for deployment"
            )
        self.comm = comm if comm is not None else MPI.COMM_WORLD
        if self.comm.Get_size() < 3:
            raise TransportError(
                f"need 3 ranks (client, server0, server1); got {self.comm.Get_size()}"
            )
        self.role = ROLE_BY_RANK.get(self.comm.Get_rank())

    def send(self, dst: str, tag: str, payload: Any) -> None:
        rank = RANK_BY_ROLE[dst]
        mpi_tag = _mpi_tag(tag)
        if isinstance(payload, np.ndarray) and payload.dtype != object:
            header = _Header(tag=tag, kind="array", shape=payload.shape, dtype=str(payload.dtype))
            self.comm.send(header, dest=rank, tag=mpi_tag)
            self.comm.Send(np.ascontiguousarray(payload), dest=rank, tag=mpi_tag)
        else:
            self.comm.send(_Header(tag=tag, kind="object"), dest=rank, tag=mpi_tag)
            self.comm.send(payload, dest=rank, tag=mpi_tag)

    def recv(self, src: str, tag: str) -> Any:
        rank = RANK_BY_ROLE[src]
        mpi_tag = _mpi_tag(tag)
        header = self.comm.recv(source=rank, tag=mpi_tag)
        if header.tag != tag:
            raise TransportError(
                f"MPI tag collision: expected {tag!r}, header says {header.tag!r}"
            )
        if header.kind == "array":
            buf = np.empty(header.shape, dtype=np.dtype(header.dtype))
            self.comm.Recv(buf, source=rank, tag=mpi_tag)
            return buf
        return self.comm.recv(source=rank, tag=mpi_tag)

    def exchange(self, peer: str, tag: str, payload: Any) -> Any:
        """Symmetric swap with ``peer`` (the Eq. 5 reconstruct round)."""
        self.send(peer, tag, payload)
        return self.recv(peer, tag)

    def barrier(self) -> None:
        self.comm.Barrier()


class LoopbackTransport:
    """The MPITransport interface inside one process (tests/dev).

    All three roles share one :class:`LoopbackTransport` hub; each
    role-scoped view is obtained with :meth:`as_role`.
    """

    def __init__(self):
        from repro.comm.transport import TransportHub

        self._hub = TransportHub(list(ROLE_BY_RANK.values()))

    def as_role(self, role: str) -> "_LoopbackView":
        if role not in RANK_BY_ROLE:
            raise TransportError(f"unknown role {role!r}")
        return _LoopbackView(self._hub, role)


class _LoopbackView:
    def __init__(self, hub, role: str):
        self._hub = hub
        self.role = role

    def send(self, dst: str, tag: str, payload: Any) -> None:
        self._hub.send(self.role, dst, tag, payload)

    def recv(self, src: str, tag: str) -> Any:
        return self._hub.recv(self.role, src, tag)

    def exchange(self, peer: str, tag: str, payload: Any) -> Any:
        self.send(peer, tag, payload)
        return self.recv(peer, tag)

    def barrier(self) -> None:  # single process: nothing to synchronise
        return None

    def pending_summary(self) -> dict[tuple[str, str], int]:
        """Undelivered (src, tag) -> count for this role's mailbox."""
        return self._hub.mailboxes[self.role].pending_summary()
