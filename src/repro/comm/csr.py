"""Compressed Sparse Row codec, from scratch.

The paper transmits sparse deltas "using the compressed sparse row
format (CSR)" (Section 4.4).  We implement the codec directly rather
than via scipy so the byte accounting is exact and under our control:

* ``indptr``  — int64, ``n_rows + 1`` entries;
* ``indices`` — int32 column ids (the paper's matrices stay far below
  2^31 columns);
* ``data``    — the nonzero values in row-major order, any dtype.

``csr_nbytes`` is the wire size the compression layer compares against
the dense size to decide whether compressing pays off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ShapeError
from repro.util.validation import check_matrix


@dataclass(frozen=True)
class CSRMatrix:
    """An encoded sparse matrix."""

    shape: tuple[int, int]
    indptr: np.ndarray  # int64 (n_rows + 1,)
    indices: np.ndarray  # int32 (nnz,)
    data: np.ndarray  # (nnz,)

    @property
    def nnz(self) -> int:
        return int(self.indices.size)

    @property
    def nbytes(self) -> int:
        return int(self.indptr.nbytes + self.indices.nbytes + self.data.nbytes)


def csr_encode(dense: np.ndarray) -> CSRMatrix:
    """Encode a 2-D array; zeros (exact) are dropped."""
    check_matrix(dense, "dense")
    mask = dense != 0
    counts = mask.sum(axis=1)
    indptr = np.zeros(dense.shape[0] + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    rows, cols = np.nonzero(mask)
    return CSRMatrix(
        shape=dense.shape,
        indptr=indptr,
        indices=cols.astype(np.int32),
        data=dense[rows, cols].copy(),
    )


def csr_decode(csr: CSRMatrix) -> np.ndarray:
    """Decode back to dense; exact inverse of :func:`csr_encode`."""
    n_rows, n_cols = csr.shape
    if csr.indptr.shape != (n_rows + 1,):
        raise ShapeError(
            f"indptr length {csr.indptr.shape[0]} does not match {n_rows} rows"
        )
    out = np.zeros(csr.shape, dtype=csr.data.dtype)
    rows = np.repeat(np.arange(n_rows), np.diff(csr.indptr))
    out[rows, csr.indices] = csr.data
    return out


def csr_nbytes(dense: np.ndarray) -> int:
    """Wire size if ``dense`` were CSR-encoded (without encoding it)."""
    nnz = int(np.count_nonzero(dense))
    n_rows = dense.shape[0]
    return (n_rows + 1) * 8 + nnz * 4 + nnz * dense.dtype.itemsize


def dense_nbytes(dense: np.ndarray) -> int:
    """Wire size of the raw matrix."""
    return int(dense.nbytes)


def density(dense: np.ndarray) -> float:
    """Fraction of nonzero elements."""
    if dense.size == 0:
        return 0.0
    return float(np.count_nonzero(dense)) / dense.size
