"""Inter-node communication substrate.

Replaces the paper's MPI-over-InfiniBand layer with byte-exact simulated
channels:

* :mod:`repro.comm.channel` — a bandwidth/latency link on the shared
  :class:`~repro.simgpu.clock.SimClock`, counting every byte;
* :mod:`repro.comm.csr` — a from-scratch CSR codec (the paper compresses
  sparse deltas in compressed-sparse-row form before transmission);
* :mod:`repro.comm.compression` — the delta + sparsity-threshold
  compressed-transmission protocol of paper Section 4.4 (Eqs. 10-12);
* :mod:`repro.comm.transport` — in-process mailboxes giving the client
  and two servers an MPI-like ordered point-to-point message surface;
* :mod:`repro.comm.wire` — the zero-copy framed codec, exact frame
  sizing, frame-CRC checksums and per-round message coalescing.
"""

from repro.comm.channel import Channel, LinkSpec, INFINIBAND_100G, ETHERNET_10G
from repro.comm.csr import CSRMatrix, csr_encode, csr_decode, csr_nbytes, dense_nbytes
from repro.comm.compression import DeltaCompressor, CompressedPayload, CompressionStats
from repro.comm.transport import Mailbox, TransportHub
from repro.comm.wire import (
    FramedSizes,
    PackedFrame,
    RoundCoalescer,
    blob_frame_sizes,
    decode_frame,
    encode_frame,
    frame_sizes,
    payload_checksum,
    unpack_frame,
)

__all__ = [
    "Channel",
    "LinkSpec",
    "INFINIBAND_100G",
    "ETHERNET_10G",
    "CSRMatrix",
    "csr_encode",
    "csr_decode",
    "csr_nbytes",
    "dense_nbytes",
    "DeltaCompressor",
    "CompressedPayload",
    "CompressionStats",
    "Mailbox",
    "TransportHub",
    "FramedSizes",
    "PackedFrame",
    "RoundCoalescer",
    "blob_frame_sizes",
    "decode_frame",
    "encode_frame",
    "frame_sizes",
    "payload_checksum",
    "unpack_frame",
]
