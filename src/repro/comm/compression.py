"""Compressed transmission for inter-server traffic (paper Section 4.4).

Across training iterations the masked values the servers exchange evolve
by the model's update deltas: with a fixed mask ``U_i``,

    E_{i,j+1} = A_{i,j+1} - U_i = E_{i,j} + Delta^A_{i,j}      (Eq. 11)

so instead of retransmitting ``E`` each epoch a server can send only the
delta — and when the delta is *sparse* (the paper's observations: ReLU
zeros, vanishing gradients late in training and in early layers), CSR
encoding shrinks it further.

:class:`DeltaCompressor` implements the sender side decision procedure
(paper "Detailed Design"): keep the last transmitted matrix per stream
key; if the delta's zero fraction reaches the threshold (75 % default)
send a CSR-coded delta, otherwise send the dense matrix.  The receiver
(:meth:`DeltaCompressor.decode`) mirrors the state so the reconstruction
is exact.  ``CompressionStats`` records raw-vs-wire bytes — the Fig. 16
measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from repro.comm.csr import CSRMatrix, csr_decode, csr_encode, csr_nbytes, dense_nbytes
from repro.telemetry.registry import MetricRegistry
from repro.util.errors import ProtocolError
from repro.util.validation import check_probability


@dataclass
class CompressedPayload:
    """What actually travels: either a dense matrix or a CSR delta."""

    kind: Literal["dense", "csr_delta"]
    key: str
    dense: np.ndarray | None = None
    delta: CSRMatrix | None = None

    @property
    def wire_bytes(self) -> int:
        if self.kind == "dense":
            return dense_nbytes(self.dense)
        return self.delta.nbytes

    @property
    def raw_bytes(self) -> int:
        """Bytes an uncompressed transmission would have cost."""
        if self.kind == "dense":
            return dense_nbytes(self.dense)
        n_rows, n_cols = self.delta.shape
        return n_rows * n_cols * self.delta.data.dtype.itemsize

    def wire_view(self):
        """What the frame codec serializes for this payload.

        Dense sends frame the matrix itself; CSR deltas frame the three
        index/value arrays plus the stream metadata the receiver's state
        machine needs.  Under ``FrameworkConfig.wire_frames`` the charged
        size is the exact frame over this view — replacing the
        ``csr_nbytes`` estimate with what actually crosses the wire.
        """
        if self.kind == "dense":
            return self.dense
        d = self.delta
        return (self.kind, self.key, d.shape, d.indptr, d.indices, d.data)


@dataclass
class CompressionStats:
    """Aggregate raw-vs-wire accounting (drives Fig. 16)."""

    raw_bytes: int = 0
    wire_bytes: int = 0
    dense_messages: int = 0
    compressed_messages: int = 0

    @property
    def savings_fraction(self) -> float:
        if self.raw_bytes == 0:
            return 0.0
        return 1.0 - self.wire_bytes / self.raw_bytes

    def merge(self, other: "CompressionStats") -> "CompressionStats":
        return CompressionStats(
            raw_bytes=self.raw_bytes + other.raw_bytes,
            wire_bytes=self.wire_bytes + other.wire_bytes,
            dense_messages=self.dense_messages + other.dense_messages,
            compressed_messages=self.compressed_messages + other.compressed_messages,
        )


class DeltaCompressor:
    """Sender/receiver state machine for compressed transmission.

    One instance per *direction* per server pair; ``key`` identifies the
    logical stream (e.g. ``"layer2/F"``) whose history makes deltas
    meaningful.  With a ``telemetry`` the counters land in the shared
    registry under ``comm.compression.*{direction}``; :attr:`stats`
    remains the historical read-out as a view over those series.
    """

    def __init__(
        self,
        sparsity_threshold: float = 0.75,
        *,
        enabled: bool = True,
        telemetry=None,
        direction: str = "default",
    ):
        self.sparsity_threshold = check_probability(sparsity_threshold, "sparsity_threshold")
        self.enabled = bool(enabled)
        self.direction = direction
        self._sent_history: dict[str, np.ndarray] = {}
        self._recv_history: dict[str, np.ndarray] = {}
        registry = telemetry.registry if telemetry is not None else MetricRegistry()
        self._raw = registry.counter(
            "comm.compression.raw_bytes", "bytes an uncompressed transmission would cost"
        )
        self._wire = registry.counter("comm.compression.wire_bytes", "bytes actually sent")
        self._dense = registry.counter(
            "comm.compression.dense_messages", "messages sent dense"
        )
        self._compressed = registry.counter(
            "comm.compression.compressed_messages", "messages sent as CSR deltas"
        )

    @property
    def stats(self) -> CompressionStats:
        """This direction's accounting as the historical dataclass."""
        d = self.direction
        return CompressionStats(
            raw_bytes=int(self._raw.value(direction=d)),
            wire_bytes=int(self._wire.value(direction=d)),
            dense_messages=int(self._dense.value(direction=d)),
            compressed_messages=int(self._compressed.value(direction=d)),
        )

    # -- sender ---------------------------------------------------------------

    def encode(self, key: str, matrix: np.ndarray) -> CompressedPayload:
        """Decide dense vs CSR-delta for this transmission and record it."""
        matrix = np.ascontiguousarray(matrix)
        previous = self._sent_history.get(key)
        payload: CompressedPayload
        if self.enabled and previous is not None and previous.shape == matrix.shape:
            with np.errstate(over="ignore"):
                delta = matrix - previous
            zero_fraction = 1.0 - np.count_nonzero(delta) / max(delta.size, 1)
            if (
                zero_fraction >= self.sparsity_threshold
                and csr_nbytes(delta) < dense_nbytes(matrix)
            ):
                payload = CompressedPayload(kind="csr_delta", key=key, delta=csr_encode(delta))
            else:
                payload = CompressedPayload(kind="dense", key=key, dense=matrix)
        else:
            payload = CompressedPayload(kind="dense", key=key, dense=matrix)
        self._sent_history[key] = matrix
        self._raw.inc(payload.raw_bytes, direction=self.direction)
        self._wire.inc(payload.wire_bytes, direction=self.direction)
        if payload.kind == "dense":
            self._dense.inc(1, direction=self.direction)
        else:
            self._compressed.inc(1, direction=self.direction)
        return payload

    def reset_stream_state(self) -> None:
        """Forget per-stream delta history (counters are kept).

        Fault recovery calls this after a party restart: a send
        interrupted between ``encode`` and ``decode`` leaves the two
        histories desynchronised, so the session is renegotiated from
        dense — exactly what a reconnecting peer would do.
        """
        self._sent_history.clear()
        self._recv_history.clear()

    # -- receiver -------------------------------------------------------------

    def decode(self, payload: CompressedPayload) -> np.ndarray:
        """Reconstruct the transmitted matrix on the receiving side."""
        if payload.kind == "dense":
            matrix = payload.dense
        else:
            previous = self._recv_history.get(payload.key)
            if previous is None:
                raise ProtocolError(
                    f"received delta for stream {payload.key!r} with no prior dense state"
                )
            with np.errstate(over="ignore"):
                matrix = previous + csr_decode(payload.delta)
        self._recv_history[payload.key] = matrix
        return matrix
