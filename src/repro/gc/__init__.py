"""Garbled-circuit engine (reference path for non-linear operations).

SecureML — and therefore ParSecureML, which inherits its protocol stack —
switches from arithmetic sharing to Yao garbled circuits for non-linear
steps such as the piecewise activation's comparisons.  This package is a
genuine, self-contained implementation:

* :mod:`repro.gc.circuits` — boolean circuits (XOR/AND/NOT with free-XOR
  friendly structure) plus builders for ripple-carry addition and
  comparison of additively shared values;
* :mod:`repro.gc.ot` — 1-out-of-2 oblivious transfer (Bellare-Micali
  style over a Diffie-Hellman group on Python integers);
* :mod:`repro.gc.garble` — point-and-permute garbling with free XOR and
  SHA-256 as the KDF, and the matching evaluator;
* :mod:`repro.gc.compare` — the end-to-end two-party comparison
  ``[x >= c]`` on shared ``x``, returning an XOR-shared output bit.

The dealer-assisted protocol in :mod:`repro.mpc.comparison` is the fast
path used during training; this engine is the reference the tests check
it against, and the honest implementation of the paper's "GC exists but
is kept off the hot path" position.
"""

from repro.gc.circuits import Circuit, build_adder_compare_circuit, evaluate_plain
from repro.gc.garble import Garbler, Evaluator, GarbledCircuit
from repro.gc.ot import ObliviousTransferSender, ObliviousTransferReceiver
from repro.gc.compare import gc_secure_ge_const

__all__ = [
    "Circuit",
    "build_adder_compare_circuit",
    "evaluate_plain",
    "Garbler",
    "Evaluator",
    "GarbledCircuit",
    "ObliviousTransferSender",
    "ObliviousTransferReceiver",
    "gc_secure_ge_const",
]
