"""Boolean circuits for garbling.

A :class:`Circuit` is a DAG of gates over binary wires.  The gate basis
is {XOR, AND, NOT}: XOR and NOT are *free* under the free-XOR garbling
optimisation, so circuit builders should prefer them — the comparison
circuit below uses the standard ripple-carry structure with one AND per
bit position.

Wire ids are dense integers; inputs are split between the two parties
(garbler inputs first, evaluator inputs second) to match the garbling
protocol's input-label delivery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro.util.errors import ConfigError

GateOp = Literal["XOR", "AND", "NOT"]


@dataclass(frozen=True)
class Gate:
    op: GateOp
    a: int
    b: int  # ignored for NOT
    out: int


@dataclass
class Circuit:
    """A boolean circuit with two-party input layout."""

    n_garbler_inputs: int
    n_evaluator_inputs: int
    gates: list[Gate] = field(default_factory=list)
    outputs: list[int] = field(default_factory=list)
    _next_wire: int = 0

    def __post_init__(self):
        self._next_wire = self.n_garbler_inputs + self.n_evaluator_inputs

    @property
    def n_inputs(self) -> int:
        return self.n_garbler_inputs + self.n_evaluator_inputs

    @property
    def n_wires(self) -> int:
        return self._next_wire

    @property
    def n_and_gates(self) -> int:
        return sum(1 for g in self.gates if g.op == "AND")

    def garbler_input(self, i: int) -> int:
        if not 0 <= i < self.n_garbler_inputs:
            raise ConfigError(f"garbler input {i} out of range")
        return i

    def evaluator_input(self, i: int) -> int:
        if not 0 <= i < self.n_evaluator_inputs:
            raise ConfigError(f"evaluator input {i} out of range")
        return self.n_garbler_inputs + i

    def _new_wire(self) -> int:
        w = self._next_wire
        self._next_wire += 1
        return w

    def xor(self, a: int, b: int) -> int:
        out = self._new_wire()
        self.gates.append(Gate("XOR", a, b, out))
        return out

    def and_(self, a: int, b: int) -> int:
        out = self._new_wire()
        self.gates.append(Gate("AND", a, b, out))
        return out

    def not_(self, a: int) -> int:
        out = self._new_wire()
        self.gates.append(Gate("NOT", a, a, out))
        return out

    def mark_output(self, wire: int) -> None:
        self.outputs.append(wire)


def evaluate_plain(circuit: Circuit, garbler_bits: list[int], evaluator_bits: list[int]) -> list[int]:
    """Evaluate the circuit in the clear (spec/reference for the tests)."""
    if len(garbler_bits) != circuit.n_garbler_inputs:
        raise ConfigError(
            f"expected {circuit.n_garbler_inputs} garbler bits, got {len(garbler_bits)}"
        )
    if len(evaluator_bits) != circuit.n_evaluator_inputs:
        raise ConfigError(
            f"expected {circuit.n_evaluator_inputs} evaluator bits, got {len(evaluator_bits)}"
        )
    wires = dict(enumerate([*garbler_bits, *evaluator_bits]))
    for g in circuit.gates:
        if g.op == "XOR":
            wires[g.out] = wires[g.a] ^ wires[g.b]
        elif g.op == "AND":
            wires[g.out] = wires[g.a] & wires[g.b]
        else:  # NOT
            wires[g.out] = wires[g.a] ^ 1
    return [wires[w] for w in circuit.outputs]


def build_adder_compare_circuit(n_bits: int = 64, constant: int = 0) -> Circuit:
    """Circuit computing ``[(x0 + x1 - c) >= 0]`` over two's complement.

    ``x0`` (garbler) and ``x1`` (evaluator) are the additive shares, bit
    i of each party's input is input wire i (LSB first).  The circuit
    adds the shares with a ripple-carry adder, then adds the constant
    ``-c mod 2^n`` (public, folded in as conditional NOTs and a second
    adder with constant inputs optimised away), and outputs the negated
    sign bit.

    Cost: 2 AND gates per bit for the share adder (standard full adder
    with free XOR) plus up to 1 AND per bit for the constant adder —
    O(n) ANDs total, the textbook construction.
    """
    if n_bits < 2:
        raise ConfigError(f"n_bits must be >= 2, got {n_bits}")
    c_neg = (-int(constant)) % (1 << n_bits)
    circ = Circuit(n_garbler_inputs=n_bits, n_evaluator_inputs=n_bits)

    # --- stage 1: s = x0 + x1 (ripple carry) ---------------------------------
    # full adder: sum = a^b^cin; cout = (a^cin)&(b^cin) ^ cin  (2 XOR-free ANDs -> 1 AND)
    sum_wires: list[int] = []
    carry: int | None = None
    for i in range(n_bits):
        a = circ.garbler_input(i)
        b = circ.evaluator_input(i)
        if carry is None:
            s = circ.xor(a, b)
            carry = circ.and_(a, b)
        else:
            axc = circ.xor(a, carry)
            bxc = circ.xor(b, carry)
            s = circ.xor(axc, b)
            carry = circ.xor(circ.and_(axc, bxc), carry)
        sum_wires.append(s)

    # --- stage 2: t = s + c_neg (constant operand) ----------------------------
    # Adding a public constant: where the constant bit is 0, sum passes
    # with carry AND; where 1, sum flips with carry OR.  Using
    #   cbit=0: t_i = s_i ^ carry;        carry' = s_i & carry
    #   cbit=1: t_i = s_i ^ carry ^ 1;    carry' = s_i | carry = (s_i & carry) ^ s_i ^ carry
    t_wires: list[int] = []
    carry2: int | None = None
    for i in range(n_bits):
        s = sum_wires[i]
        cbit = (c_neg >> i) & 1
        if carry2 is None:
            # Carry-in still known to be 0: t = s ^ cbit, carry' = s AND cbit.
            t_wires.append(circ.not_(s) if cbit else s)
            if cbit:
                carry2 = s
            continue
        t = circ.xor(s, carry2)
        if cbit:
            t = circ.not_(t)
            and_sc = circ.and_(s, carry2)
            carry2 = circ.xor(circ.xor(and_sc, s), carry2)
        else:
            carry2 = circ.and_(s, carry2)
        t_wires.append(t)

    # --- output: [x >= c]  =  NOT sign(t) -------------------------------------
    circ.mark_output(circ.not_(t_wires[n_bits - 1]))
    return circ
