"""Point-and-permute garbling with free XOR.

Standard modern-textbook Yao:

* every wire ``w`` carries two 16-byte labels ``L_w^0, L_w^1`` with
  ``L_w^1 = L_w^0 XOR Delta`` for a global secret ``Delta`` whose last
  bit is 1 (free-XOR); the label's last bit is the *permute bit* used to
  index garbled tables without leaking truth values;
* XOR gates are free: ``L_out = L_a XOR L_b`` (no table);
* NOT gates are free: ``L_out^0 = L_a^1`` (swap, handled by XORing
  ``Delta`` into the zero-label);
* AND gates emit a 4-row table, row order given by the input permute
  bits, each row ``H(L_a, L_b, gate_id) XOR L_out``;
* outputs are decoded with per-output permute-bit maps.

SHA-256 is the KDF.  Labels are ``bytes``; the engine is deliberately
simple and correct — throughput is the dealer-assisted path's job.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass, field

from repro.gc.circuits import Circuit, Gate
from repro.util.errors import ProtocolError

LABEL_BYTES = 16


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def _hash_gate(a: bytes, b: bytes, gate_id: int) -> bytes:
    return hashlib.sha256(a + b + gate_id.to_bytes(4, "little")).digest()[:LABEL_BYTES]


def _permute_bit(label: bytes) -> int:
    return label[-1] & 1


@dataclass
class GarbledCircuit:
    """What the garbler sends to the evaluator."""

    circuit: Circuit
    tables: dict[int, list[bytes]]  # gate index -> 4 rows (AND gates only)
    output_permute_bits: list[int]  # decode info per circuit output


class Garbler:
    """Garbles a circuit and hands out input labels.

    The garbler's own input labels are selected directly; the
    evaluator's are meant to be delivered via OT (see
    :func:`repro.gc.compare.gc_secure_ge_const`), which is why both
    labels of every evaluator input are exposed to *this* object only.
    """

    def __init__(self, circuit: Circuit, seed: bytes | None = None):
        self.circuit = circuit
        rand = secrets.token_bytes if seed is None else _DeterministicRand(seed).token_bytes
        delta = bytearray(rand(LABEL_BYTES))
        delta[-1] |= 1  # free-XOR requires lsb(Delta) = 1 (permute bits differ)
        self._delta = bytes(delta)
        # zero-labels for every wire; ones are zero XOR Delta.
        self._zero: dict[int, bytes] = {}
        for w in range(circuit.n_inputs):
            self._zero[w] = rand(LABEL_BYTES)
        self._garbled = self._garble(rand)

    def _label(self, wire: int, value: int) -> bytes:
        zero = self._zero[wire]
        return zero if value == 0 else _xor(zero, self._delta)

    def _garble(self, rand) -> GarbledCircuit:
        tables: dict[int, list[bytes]] = {}
        for gi, gate in enumerate(self.circuit.gates):
            if gate.op == "XOR":
                self._zero[gate.out] = _xor(self._zero[gate.a], self._zero[gate.b])
            elif gate.op == "NOT":
                self._zero[gate.out] = _xor(self._zero[gate.a], self._delta)
            elif gate.op == "AND":
                out_zero = rand(LABEL_BYTES)
                self._zero[gate.out] = out_zero
                rows: list[bytes | None] = [None] * 4
                for va in (0, 1):
                    for vb in (0, 1):
                        la = self._label(gate.a, va)
                        lb = self._label(gate.b, vb)
                        out_label = self._label(gate.out, va & vb)
                        row_index = (_permute_bit(la) << 1) | _permute_bit(lb)
                        rows[row_index] = _xor(_hash_gate(la, lb, gi), out_label)
                tables[gi] = rows  # type: ignore[assignment]
            else:  # pragma: no cover - exhaustive over GateOp
                raise ProtocolError(f"unknown gate op {gate.op}")
        output_permute_bits = [_permute_bit(self._zero[w]) for w in self.circuit.outputs]
        return GarbledCircuit(
            circuit=self.circuit, tables=tables, output_permute_bits=output_permute_bits
        )

    @property
    def garbled(self) -> GarbledCircuit:
        return self._garbled

    def garbler_input_labels(self, bits: list[int]) -> list[bytes]:
        """Labels for the garbler's own input bits (sent in the clear —
        labels reveal nothing)."""
        if len(bits) != self.circuit.n_garbler_inputs:
            raise ProtocolError(
                f"expected {self.circuit.n_garbler_inputs} garbler bits, got {len(bits)}"
            )
        return [self._label(self.circuit.garbler_input(i), b) for i, b in enumerate(bits)]

    def evaluator_input_label_pairs(self) -> list[tuple[bytes, bytes]]:
        """(zero-label, one-label) per evaluator input — feed these to OT."""
        return [
            (
                self._label(self.circuit.evaluator_input(i), 0),
                self._label(self.circuit.evaluator_input(i), 1),
            )
            for i in range(self.circuit.n_evaluator_inputs)
        ]


class Evaluator:
    """Evaluates a garbled circuit given one label per input wire."""

    def __init__(self, garbled: GarbledCircuit):
        self.garbled = garbled

    def evaluate(self, garbler_labels: list[bytes], evaluator_labels: list[bytes]) -> list[int]:
        circ = self.garbled.circuit
        if len(garbler_labels) != circ.n_garbler_inputs:
            raise ProtocolError("wrong number of garbler labels")
        if len(evaluator_labels) != circ.n_evaluator_inputs:
            raise ProtocolError("wrong number of evaluator labels")
        wires: dict[int, bytes] = {}
        for i, lab in enumerate(garbler_labels):
            wires[circ.garbler_input(i)] = lab
        for i, lab in enumerate(evaluator_labels):
            wires[circ.evaluator_input(i)] = lab
        for gi, gate in enumerate(circ.gates):
            if gate.op == "XOR":
                wires[gate.out] = _xor(wires[gate.a], wires[gate.b])
            elif gate.op == "NOT":
                wires[gate.out] = wires[gate.a]  # label unchanged; decode flips
            elif gate.op == "AND":
                la, lb = wires[gate.a], wires[gate.b]
                row = self.garbled.tables[gi][(_permute_bit(la) << 1) | _permute_bit(lb)]
                wires[gate.out] = _xor(_hash_gate(la, lb, gi), row)
        # Decode: the evaluator sees the permute bit of the obtained
        # label; XOR with the garbler-provided zero-permute-bit gives the
        # truth value.
        return [
            _permute_bit(wires[w]) ^ p
            for w, p in zip(circ.outputs, self.garbled.output_permute_bits)
        ]


class _DeterministicRand:
    """SHA-256 counter DRBG for reproducible garbling in tests."""

    def __init__(self, seed: bytes):
        self._seed = seed
        self._counter = 0

    def token_bytes(self, n: int) -> bytes:
        out = b""
        while len(out) < n:
            out += hashlib.sha256(self._seed + self._counter.to_bytes(8, "little")).digest()
            self._counter += 1
        return out[:n]
