"""End-to-end GC comparison of an additively shared value.

``gc_secure_ge_const`` runs the full Yao protocol between the two
servers for a *scalar* shared value (the activation path vectorises via
the dealer-assisted protocol; this is the reference/interop path):

1. server 0 (garbler) builds the comparison circuit for the public
   constant, garbles it, and sends the garbled tables plus the labels of
   its own share's bits;
2. server 1 (evaluator) runs one OT per input bit to obtain the labels
   of *its* share's bits, evaluates, and learns the output bit;
3. the output is re-shared: the garbler XORs a random mask bit into the
   circuit (by flipping the output decode), so server 1 learns only
   ``result XOR mask`` — both ends hold XOR shares, as the arithmetic
   layer expects.

Returns the XOR shares and byte/round accounting so the cost model can
price GC fairly against the dealer-assisted path (the paper's reason to
avoid GC on the hot path is exactly this cost).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from repro.gc.circuits import build_adder_compare_circuit
from repro.gc.garble import Evaluator, Garbler, LABEL_BYTES
from repro.gc.ot import ObliviousTransferReceiver, ObliviousTransferSender


@dataclass
class GCCompareResult:
    share0: int  # garbler's XOR share of [x >= c]
    share1: int  # evaluator's XOR share
    bytes_exchanged: int
    n_and_gates: int


def gc_secure_ge_const(
    x0: int, x1: int, c_encoded: int, *, n_bits: int = 64, seed: bytes | None = None
) -> GCCompareResult:
    """Compare ``x = x0 + x1 (mod 2^n)`` against public ``c``.

    ``x0``/``x1`` are the servers' additive shares as Python ints in
    ``[0, 2^n)``; the result is XOR-shared between the parties.
    """
    mask = 2**n_bits - 1
    x0 &= mask
    x1 &= mask

    circuit = build_adder_compare_circuit(n_bits, constant=int(c_encoded) & mask)
    garbler = Garbler(circuit, seed=seed)

    # Output masking: garbler draws a random bit and flips the decode
    # permute bit, so the evaluator's decoded value is result XOR mask.
    mask_bit = secrets.randbelow(2) if seed is None else seed[0] & 1
    garbled = garbler.garbled
    garbled.output_permute_bits = [p ^ mask_bit for p in garbled.output_permute_bits]

    g_bits = [(x0 >> i) & 1 for i in range(n_bits)]
    e_bits = [(x1 >> i) & 1 for i in range(n_bits)]
    g_labels = garbler.garbler_input_labels(g_bits)

    # OT per evaluator input bit.
    ot_bytes = 0
    e_labels = []
    for (l0, l1), bit in zip(garbler.evaluator_input_label_pairs(), e_bits):
        sender = ObliviousTransferSender(l0, l1)
        receiver = ObliviousTransferReceiver(bit)
        pk0 = receiver.request(sender.public_c)
        msg = sender.respond(pk0)
        e_labels.append(receiver.receive(msg))
        # public C + PK0 + two ElGamal pairs (group elements ~64 bytes).
        ot_bytes += 64 + 64 + 2 * (64 + LABEL_BYTES)

    evaluator = Evaluator(garbled)
    out_bit = evaluator.evaluate(g_labels, e_labels)[0]

    table_bytes = 4 * LABEL_BYTES * circuit.n_and_gates
    label_bytes = LABEL_BYTES * circuit.n_garbler_inputs
    return GCCompareResult(
        share0=mask_bit,
        share1=out_bit,
        bytes_exchanged=table_bytes + label_bytes + ot_bytes + 1,
        n_and_gates=circuit.n_and_gates,
    )
