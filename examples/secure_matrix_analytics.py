"""Beyond ML: secure matrix analytics on the same protocol (Section 7.7).

The paper notes the framework "can also be used in other matrix-based
computing tasks", since anything built from triplet multiplications is
protected.  This example runs two classic matrix workloads entirely on
secret shares:

1. **secure power iteration** — the dominant eigenvector of a covariance
   matrix (the heart of PCA), using secure matmuls plus client-side
   renormalisation each step (the client owns the data, so decoding a
   scalar norm per iteration is within the trust model);
2. **secure Richardson iteration** — solving ``A x = b`` for a
   well-conditioned ``A`` with only secure matmuls and local adds.

Both converge to the plain NumPy answers within fixed-point tolerance.

Run:  python examples/secure_matrix_analytics.py
"""

import numpy as np

from repro.core import FrameworkConfig, SecureContext, SharedTensor, ops


def secure_power_iteration(ctx, cov: np.ndarray, iters: int = 12) -> np.ndarray:
    """Dominant eigenvector of ``cov`` computed on shares."""
    n = cov.shape[0]
    a = SharedTensor.from_plain(ctx, cov, label="pca/cov")
    v = np.ones((n, 1)) / np.sqrt(n)
    for it in range(iters):
        v_shared = SharedTensor.from_plain(ctx, v, label="pca/v")
        w = ops.secure_matmul(a, v_shared, label="pca/step")
        # client renormalises (it owns the data; one scalar round-trip)
        w_plain = w.decode()
        v = w_plain / np.linalg.norm(w_plain)
    return v.ravel()


def secure_richardson(ctx, a_mat: np.ndarray, b: np.ndarray, iters: int = 40) -> np.ndarray:
    """Solve A x = b on shares via x <- x + omega (b - A x)."""
    omega = 1.0 / np.linalg.norm(a_mat, 2)  # public spectral bound
    a = SharedTensor.from_plain(ctx, a_mat, label="solve/A")
    b_shared = SharedTensor.from_plain(ctx, b, label="solve/b")
    x = SharedTensor.from_plain(ctx, np.zeros_like(b), label="solve/x0")
    for it in range(iters):
        ax = ops.secure_matmul(a, x, label="solve/Ax")
        residual = b_shared - ax
        x = x + residual.mul_public(omega)
    return x.decode()


def main() -> None:
    rng = np.random.default_rng(0)
    ctx = SecureContext(FrameworkConfig.parsecureml())

    # --- secure PCA ---------------------------------------------------------
    data = rng.normal(size=(200, 12))
    data[:, 0] += 3 * data[:, 1]  # plant a dominant direction
    cov = np.cov(data.T)
    v_secure = secure_power_iteration(ctx, cov)
    eigvals, eigvecs = np.linalg.eigh(cov)
    v_plain = eigvecs[:, -1]
    alignment = abs(float(v_secure @ v_plain))
    print(f"secure PCA: |<v_secure, v_numpy>| = {alignment:.6f} (1.0 is perfect)")
    assert alignment > 0.999

    # --- secure linear solve --------------------------------------------------
    a_mat = np.eye(10) * 2.0 + rng.normal(size=(10, 10)) * 0.1
    a_mat = (a_mat + a_mat.T) / 2  # symmetric, well conditioned
    x_true = rng.normal(size=(10, 1))
    b = a_mat @ x_true
    x_secure = secure_richardson(ctx, a_mat, b)
    err = float(np.abs(x_secure - x_true).max())
    print(f"secure Richardson solve: max |x - x_true| = {err:.2e}")
    assert err < 5e-3

    mark = ctx.mark()
    print(f"total offline {ctx.offline_clock.now() * 1e3:.2f} ms, "
          f"online {ctx.online_clock.now() * 1e3:.2f} ms (simulated); "
          f"{ctx.triplets_issued} triplet streams issued")


if __name__ == "__main__":
    main()
