"""Secure inference service: many clients, one secure deployment.

The deployment the paper's Fig. 13 targets: a model owner trains in the
clear on their own hardware, then serves predictions on untrusted cloud
servers — the model weights and every query stay secret-shared.  This
example runs the full service stack (:mod:`repro.serve`):

1. trains a plain face-recognition-style MLP locally (VGGFace2-like
   images, downscaled for the demo);
2. installs its weights into the secure stack as shares;
3. serves *concurrent ragged requests* from several logical clients —
   tiny one-row queries included — through the bounded queue and the
   adaptive batcher, retrying on queue-full backpressure;
4. validates that **zero requests were lost** and every answer matches
   the plain model, then reports p50/p95/p99 request latency.

With ``--chaos-seed`` a fault plan (packet drops + a mid-serve party
crash) runs underneath; the service must still lose nothing and return
bit-identical predictions — the crash only shows up in the tail latency.

With ``--replicas N`` the same request stream runs through the sharded
serving fleet (:mod:`repro.serve.fleet`) instead of one server: N
replica deployments behind the router, a shared dealer, and — under
chaos — replica crashes recovered by re-routing the admitted requests
onto healthy replicas.  Zero requests lost, same agreement bar.

Run:  python examples/secure_inference_service.py --clients 6 --chaos-seed 7
      python examples/secure_inference_service.py --replicas 2 --chaos-seed 7
"""

import argparse
import sys

import numpy as np

from repro.baselines.plain import PlainMLP, PlainTimer, PlainTrainer
from repro.core import FrameworkConfig, SecureContext, SecureMLP
from repro.datasets import vggface2_like
from repro.faults import FaultPlan, PartyCrash
from repro.serve import QueueFullError, Replica, SecureServingFleet

IMAGE = (40, 40, 1)  # demo-scale stand-in for the paper's 200x200 faces
FEATURES = 40 * 40
N_CLASSES = 10
MAX_BATCH = 64


def train_plain():
    """Train the face-recognition-style MLP in the clear."""
    x_train, y_train = vggface2_like(512, seed=1, image_shape=IMAGE)
    plain = PlainMLP(FEATURES, hidden=(64, 32), n_out=N_CLASSES, seed=3)
    PlainTrainer(plain, PlainTimer("cpu"), lr=0.05).train(
        x_train, y_train, epochs=3, batch_size=MAX_BATCH
    )
    return plain


def deploy_model(ctx, plain):
    """Install the plain weights into a secure model as shares."""
    service = SecureMLP(ctx, FEATURES, hidden=(64, 32), n_out=N_CLASSES)
    dense_secure = [la for la in service.layers if hasattr(la, "weight")]
    dense_plain = [la for la in plain.layers if hasattr(la, "w")]
    for ls, lp in zip(dense_secure, dense_plain):
        wp = ctx.share_plain(lp.w, label=f"deploy/{ls.name}/W")
        bp = ctx.share_plain(lp.b, label=f"deploy/{ls.name}/b")
        ls.weight.shares = (wp.share0, wp.share1)
        ls.bias.shares = (bp.share0, bp.share1)
    return service


def chaos_plan(chaos_seed: int):
    return FaultPlan(
        seed=chaos_seed,
        drop=0.02,
        crashes=(PartyCrash("server1", at_step=3),),
    )


def build_service(chaos_seed: int | None):
    """Train in the clear, deploy the weights as shares, wrap in a server."""
    plain = train_plain()
    overrides = {}
    if chaos_seed is not None:
        overrides["fault_plan"] = chaos_plan(chaos_seed)
    ctx = SecureContext(FrameworkConfig.parsecureml(**overrides))
    service = deploy_model(ctx, plain)
    server = Replica(ctx, service, max_batch=MAX_BATCH, queue_rows=4 * MAX_BATCH)
    return ctx, plain, server


def build_fleet(chaos_seed: int | None, replicas: int):
    """Train once, deploy the same weights onto every fleet replica.

    Under chaos only replica 0 runs the fault plan, and the fleet's
    per-batch retry budget is zero — so the crash escalates to the
    router, which must drain the admitted requests back and re-route
    them onto the healthy replicas.
    """
    plain = train_plain()
    replica_config = None
    request_retries = 2
    if chaos_seed is not None:
        plan = chaos_plan(chaos_seed)
        request_retries = 0

        def replica_config(index, cfg):
            return cfg.but(fault_plan=plan) if index == 0 else cfg

    fleet = SecureServingFleet(
        lambda ctx: deploy_model(ctx, plain),
        replicas=replicas,
        config=FrameworkConfig.parsecureml(),
        replica_config=replica_config,
        placement="least-depth",  # spread the waves so every replica works
        max_batch=MAX_BATCH,
        queue_rows=4 * MAX_BATCH,
        request_retries=request_retries,
    )
    return plain, fleet


def submit_all(server, queries):
    """Submit every client wave, backing off through QueueFullError."""
    pending = list(queries)
    submitted = {}
    rejections = 0
    while pending:
        client, x = pending.pop(0)
        try:
            rid = server.submit(client, x)
        except QueueFullError:
            rejections += 1
            server.drain()  # serve what is queued, then resubmit — never drop
            pending.insert(0, (client, x))
            continue
        submitted[rid] = (client, x)
        server.pump()  # serve full batches as they form
    return submitted, rejections


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--clients", type=int, default=6,
                        help="concurrent logical clients (default 6)")
    parser.add_argument("--requests", type=int, default=4,
                        help="request waves per client (default 4)")
    parser.add_argument("--chaos-seed", type=int, default=None,
                        help="run under a fault plan (drops + a party crash)")
    parser.add_argument("--replicas", type=int, default=1,
                        help="serve through a fleet of N replicas (default 1 "
                        "= the single-server path)")
    args = parser.parse_args(argv)

    if args.replicas > 1:
        plain, fleet = build_fleet(args.chaos_seed, args.replicas)
        ctx, server = None, fleet
    else:
        ctx, plain, server = build_service(args.chaos_seed)

    # Interleaved client waves with ragged sizes, tiny requests included.
    rng = np.random.default_rng(4)
    sizes = [1, 3, 7, 17, 29, MAX_BATCH]
    queries = []
    for wave in range(args.requests):
        for c in range(args.clients):
            rows = sizes[(wave * args.clients + c) % len(sizes)]
            x, _ = vggface2_like(rows, seed=100 + wave * args.clients + c,
                                 image_shape=IMAGE)
            queries.append((f"client{c}", x))
    rng.shuffle(queries)

    submitted, rejections = submit_all(server, queries)
    server.drain()
    rep = server.report()

    # -- acceptance: nothing lost, every answer right -------------------------
    lost = [
        rid for rid, (client, _x) in submitted.items()
        if rep.response_for(client, rid) is None
    ]
    if lost or rep.served_requests != len(submitted):
        print(f"FAILED: {len(lost)} of {len(submitted)} requests lost "
              f"(served {rep.served_requests})", file=sys.stderr)
        return 1
    timer = PlainTimer("cpu")
    tie_flips = 0
    max_err = 0.0
    for resp in rep.responses:
        rid = resp.fleet_rid if args.replicas > 1 else resp.request_id
        _, x = submitted[rid]
        ref = plain.forward(x, timer, training=False)
        err = float(np.abs(resp.predictions - ref).max())
        max_err = max(max_err, err)
        flipped = resp.predictions.argmax(axis=1) != ref.argmax(axis=1)
        if flipped.any():
            # a class flip is only acceptable on a near-tie: the plain
            # top-2 logit margin must be within fixed-point noise
            srt = np.sort(ref[flipped], axis=1)
            margins = srt[:, -1] - srt[:, -2]
            if (margins > 1e-2).any():
                print(f"FAILED: predictions disagree with the plain model "
                      f"beyond fixed-point noise (margin {margins.max():.3f})",
                      file=sys.stderr)
                return 1
            tie_flips += int(flipped.sum())
    total_rows = sum(r.rows for r in rep.responses)

    # -- service report -------------------------------------------------------
    chaos = f" under chaos seed {args.chaos_seed}" if args.chaos_seed is not None else ""
    agreement = 1.0 - tie_flips / max(total_rows, 1)
    print(f"served {rep.served_requests} requests / {total_rows} rows from "
          f"{args.clients} clients{chaos}: zero lost, {agreement:.1%} agreement "
          f"(max logit deviation {max_err:.2e}, {tie_flips} near-tie flips)")
    print(f"batching: {rep.batches} secure batches, fill {rep.mean_batch_fill:.0%} "
          f"({rep.padded_rows} pad rows), {rejections} backpressure rejects"
          + ("" if args.replicas > 1 else f", {rep.timer_waits} timer flushes"))
    print(f"latency (simulated online): p50 {rep.latency['p50'] * 1e3:.3f} ms   "
          f"p95 {rep.latency['p95'] * 1e3:.3f} ms   "
          f"p99 {rep.latency['p99'] * 1e3:.3f} ms")
    if args.replicas > 1:
        if rep.dropped_requests:
            print(f"FAILED: fleet dropped {rep.dropped_requests} requests",
                  file=sys.stderr)
            return 1
        print(f"fleet: {args.replicas} replicas, {rep.replica_crashes} "
              f"crash(es) recovered, {rep.rerouted_requests} requests "
              f"re-routed, {rep.dropped_requests} dropped")
        for name, r in sorted(rep.replicas.items()):
            print(f"  {name}: {r.served_requests} requests / {r.served_rows} rows "
                  f"in {r.batches} batches, online {r.online_s * 1e3:.3f} ms")
        return 0
    if rep.retried_batches:
        print(f"faults: {rep.retried_batches} batch(es) retried after a party "
              f"crash, {rep.retry_online_s * 1e3:.3f} ms burned in recovery "
              f"— visible in p99, invisible in the answers")
    stats = ctx.compression_stats
    print(f"inter-server traffic: {stats.wire_bytes / 1e6:.2f} MB on the wire "
          f"for {stats.raw_bytes / 1e6:.2f} MB raw "
          f"({stats.savings_fraction:.1%} saved by delta compression — "
          f"weight streams are constant at inference time)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
