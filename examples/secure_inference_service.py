"""Secure inference service: deploy a trained model behind 2PC.

The deployment the paper's Fig. 13 targets: a model owner trains in the
clear on their own hardware, then serves predictions on untrusted cloud
servers — the model weights and every query stay secret-shared.  This
example:

1. trains a plain face-recognition-style MLP locally (VGGFace2-like
   images, downscaled for the demo);
2. installs its weights into the secure stack as shares;
3. answers queries with the secure forward pass, checking the answers
   match the plain model bit-for-fixed-point;
4. reports latency/throughput and what the delta compression saves —
   inference is the setting where the Section 4.4 optimisation shines,
   because the weight streams never change.

Run:  python examples/secure_inference_service.py
"""

import numpy as np

from repro.baselines.plain import PlainMLP, PlainTimer, PlainTrainer
from repro.core import FrameworkConfig, SecureContext, SecureMLP, secure_predict
from repro.datasets import vggface2_like

IMAGE = (40, 40, 1)  # demo-scale stand-in for the paper's 200x200 faces
FEATURES = 40 * 40
N_CLASSES = 10
BATCH = 64


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. Model owner trains in the clear.
    x_train, y_train = vggface2_like(512, seed=1, image_shape=IMAGE)
    plain = PlainMLP(FEATURES, hidden=(64, 32), n_out=N_CLASSES, seed=3)
    PlainTrainer(plain, PlainTimer("cpu"), lr=0.05).train(
        x_train, y_train, epochs=3, batch_size=BATCH
    )

    # 2. Deploy: share the trained weights onto the two servers.
    ctx = SecureContext(FrameworkConfig.parsecureml())
    service = SecureMLP(ctx, FEATURES, hidden=(64, 32), n_out=N_CLASSES)
    dense_secure = [l for l in service.layers if hasattr(l, "weight")]
    dense_plain = [l for l in plain.layers if hasattr(l, "w")]
    for ls, lp in zip(dense_secure, dense_plain):
        wp = ctx.share_plain(lp.w, label=f"deploy/{ls.name}/W")
        bp = ctx.share_plain(lp.b, label=f"deploy/{ls.name}/b")
        ls.weight.shares = (wp.share0, wp.share1)
        ls.bias.shares = (bp.share0, bp.share1)

    # 3. Serve queries securely and validate against the plain model.
    x_query, _ = vggface2_like(4 * BATCH, seed=2, image_shape=IMAGE)
    report = secure_predict(ctx, service, x_query, batch_size=BATCH)
    plain_pred = plain.forward(x_query, PlainTimer("cpu"), training=False)
    secure_cls = report.predictions.argmax(axis=1)
    plain_cls = plain_pred.argmax(axis=1)
    agreement = float(np.mean(secure_cls == plain_cls))
    max_err = float(np.abs(report.predictions - plain_pred).max())
    print(f"served {report.samples} queries in {report.batches} secure batches")
    print(f"prediction agreement with the plain model: {agreement:.1%} "
          f"(max logit deviation {max_err:.2e})")

    # 4. Cost profile of the service.
    per_batch_ms = report.marginal_online_s * 1e3
    print(f"online latency: {per_batch_ms:.2f} ms (simulated) per {BATCH}-query batch "
          f"-> {BATCH / report.marginal_online_s:,.0f} queries/s")
    stats = ctx.compression_stats
    print(f"inter-server traffic: {stats.wire_bytes / 1e6:.2f} MB on the wire "
          f"for {stats.raw_bytes / 1e6:.2f} MB raw "
          f"({stats.savings_fraction:.1%} saved by delta compression — "
          f"weight streams are constant at inference time)")


if __name__ == "__main__":
    main()
