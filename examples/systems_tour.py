"""A tour of the three systems contributions, with visible evidence.

For each of the paper's Section 4 techniques, this example runs a
workload with the technique on and off and shows the simulated-timeline
evidence:

1. profiling-guided adaptive placement — the profiler's actual
   decisions across operation sizes (Section 4.2);
2. the double pipeline — an ASCII Gantt chart of one training batch
   with and without overlap (Section 4.3, Figs. 5-6);
3. compressed transmission — wire bytes with and without (Section 4.4).

Run:  python examples/systems_tour.py
"""

import numpy as np

import repro
from repro import FrameworkConfig, SecureMLP, SecureTrainer
from repro.pipeline.timeline import render_gantt, summarize


def tour_adaptive_placement() -> None:
    print("=" * 72)
    print("1. Profiling-guided adaptive GPU utilisation (Section 4.2)")
    print("=" * 72)
    ctx = repro.api.session()
    print(f"{'GEMM (m, k, n)':>24} | {'CPU est.':>10} | {'GPU est.':>10} | placement")
    for m, k, n in [(16, 16, 16), (128, 256, 64), (128, 4096, 128), (2048, 8192, 2048)]:
        d = ctx.profiler.place_gemm(m, k, n)
        print(f"{str((m, k, n)):>24} | {d.cpu_estimate_s:10.2e} | "
              f"{d.gpu_estimate_s:10.2e} | {d.placement}")
    print("small operations stay on the CPU (PCIe would eat the gain); large go to the GPU\n")


def _one_batch_timeline(double_pipeline: bool):
    cfg = FrameworkConfig.parsecureml(
        double_pipeline=double_pipeline,
        placement_mode="gpu_always",
        activation_protocol="emulated",
        trace=True,
    )
    ctx = repro.api.session(cfg)
    rng = np.random.default_rng(0)
    x = rng.normal(size=(128, 512))
    y = rng.normal(size=(128, 10))
    model = SecureMLP(ctx, 512, hidden=(256, 128), n_out=10)
    SecureTrainer(ctx, model, monitor_loss=False).train(x, y, epochs=1, batch_size=128)
    return ctx


def tour_double_pipeline() -> None:
    print("=" * 72)
    print("2. Double pipeline (Section 4.3): one secure batch, server 0")
    print("=" * 72)
    for dp in (False, True):
        ctx = _one_batch_timeline(dp)
        resources = ["s0.cpu", "s0rec.cpu", "s0gpu.h2d", "s0gpu.s0", "s0gpu.d2h"]
        resources = [r for r in resources if r in ctx.online_clock.resources()]
        print(f"\n--- double pipeline {'ON' if dp else 'OFF'} "
              f"(online makespan {ctx.online_clock.now() * 1e3:.2f} ms) ---")
        print(render_gantt(ctx.online_clock, resources=resources, width=68))
        s = summarize(ctx.online_clock)
        print(f"concurrent work: {s.overlap_seconds() * 1e3:.2f} ms of overlap")
    print()


def tour_compression() -> None:
    print("=" * 72)
    print("3. Compressed transmission (Section 4.4): inference traffic")
    print("=" * 72)
    for comp in (False, True):
        ctx = repro.api.session(compression=comp)
        rng = np.random.default_rng(0)
        model = SecureMLP(ctx, 256, hidden=(128, 64), n_out=10)
        repro.secure_predict(ctx, model, rng.normal(size=(512, 256)), batch_size=128)
        snap = ctx.telemetry.snapshot()
        wire = snap.counter("comm.bytes", channel=ctx.server_channel.label)
        print(f"compression {'ON ' if comp else 'OFF'}: "
              f"{wire / 1e6:8.2f} MB between the servers")
    print()
    print(ctx.telemetry.report(title="systems tour telemetry (last run)"))


def main() -> None:
    tour_adaptive_placement()
    tour_double_pipeline()
    tour_compression()


if __name__ == "__main__":
    main()
