"""Quickstart: secure two-party computation in a few lines.

Walks the public API end to end:

1. start a session with :func:`repro.api.session` (client + two
   simulated GPU servers, fully wired with telemetry);
2. secret-share two matrices;
3. multiply them with the Beaver-triplet protocol (offline triplet,
   online masked exchange + GPU operation);
4. train a small secure logistic regression and read the telemetry
   report.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    rng = np.random.default_rng(0)

    # 1. A fully-optimised ParSecureML deployment (GPU, double pipeline,
    #    compression, Tensor Cores). repro.FrameworkConfig.secureml()
    #    would give the CPU-only baseline instead.
    ctx = repro.api.session()

    # 2. The client encrypts its matrices: each server receives one
    #    additive share and learns nothing on its own.
    a = rng.normal(size=(64, 32))
    b = rng.normal(size=(32, 16))
    a_shared = repro.SharedTensor.from_plain(ctx, a, label="demo/A")
    b_shared = repro.SharedTensor.from_plain(ctx, b, label="demo/B")

    # 3. One secure matrix product. Under the hood: Beaver triplet from
    #    the offline phase, E/F masked exchange between the servers, the
    #    Eq. 8 GEMM on the simulated V100s, local truncation.
    c_shared = repro.secure_matmul(a_shared, b_shared, label="demo/matmul")
    err = np.abs(c_shared.decode() - a @ b).max()
    print(f"secure matmul max error vs plain: {err:.2e} "
          f"(fixed-point resolution is {ctx.encoder.resolution:.2e})")

    # 4. Secure training: the client shares a dataset once (offline), the
    #    servers then run SGD over their shares (online).
    x = rng.normal(size=(512, 20))
    w_true = rng.normal(size=(20, 1))
    y = (x @ w_true > 0).astype(float)
    model = repro.SecureLogisticRegression(ctx, 20, n_out=1)
    report = repro.SecureTrainer(ctx, model, lr=0.5).train(x, y, epochs=5, batch_size=128)

    print(f"loss: {report.losses[0]:.4f} -> {report.losses[-1]:.4f} "
          f"over {report.batches} secure batches")

    # 5. Everything the run cost — phases, traffic, kernels, op roll-ups
    #    — is in the context's telemetry.
    print()
    print(ctx.telemetry.report(title="quickstart telemetry"))


if __name__ == "__main__":
    main()
