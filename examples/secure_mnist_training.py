"""The paper's flagship scenario: secure MLP training on MNIST-scale data.

Trains the same model under the SecureML baseline (CPU-only two-party
computation) and under ParSecureML (GPU + double pipeline + compression
+ Tensor Cores), verifies both produce *identical* trained weights
(the optimisations are numerics-preserving), and reports the speedup the
way Figs. 10-12 do — extrapolated to the full 60k-sample epoch.

Run:  python examples/secure_mnist_training.py
"""

import numpy as np

from repro.core import FrameworkConfig, SecureContext, SecureMLP, SecureTrainer
from repro.datasets import mnist_like, PAPER_DATASETS

BATCH = 128
MEASURED_BATCHES = 3


def run(config: FrameworkConfig, x, y):
    ctx = SecureContext(config)
    model = SecureMLP(ctx, 784)  # the paper's 128-64-10 MLP
    trainer = SecureTrainer(ctx, model, lr=0.03125, monitor_loss=True)
    report = trainer.train(x, y, epochs=1, batch_size=BATCH)
    return ctx, model, report


def main() -> None:
    x, y = mnist_like(MEASURED_BATCHES * BATCH, seed=0)
    print(f"dataset: MNIST-like, {x.shape[0]} samples of 28x28 "
          f"(measured; costs extrapolated to {PAPER_DATASETS['MNIST'].paper_samples})")

    _, sml_model, sml = run(FrameworkConfig.secureml(seed=7), x, y)
    _, par_model, par = run(FrameworkConfig.parsecureml(seed=7), x, y)

    # The systems optimisations must not touch the protocol's values.
    for a, b in zip(sml_model.parameters(), par_model.parameters()):
        assert np.array_equal(a.decode(), b.decode())
    print("check: trained weights identical across SecureML/ParSecureML ✓")

    paper_batches = PAPER_DATASETS["MNIST"].paper_samples // BATCH
    paper_samples = PAPER_DATASETS["MNIST"].paper_samples
    rows = []
    for name, rep in (("SecureML ", sml), ("ParSecure", par)):
        off, on = rep.extrapolate(paper_samples, paper_batches)
        rows.append((name, off, on, off + on))
        print(f"{name}: offline {off:8.2f}s  online {on:9.2f}s  "
              f"total {off + on:9.2f}s  (simulated, one epoch)")
    speedup = rows[0][3] / rows[1][3]
    online_speedup = rows[0][2] / rows[1][2]
    print(f"overall speedup: {speedup:5.1f}x   online speedup: {online_speedup:5.1f}x "
          f"(paper MNIST-MLP: 16.2x / 33.0x)")
    print(f"training loss over measured batches: "
          f"{sml.losses[0]:.4f} -> {sml.losses[-1]:.4f}")


if __name__ == "__main__":
    main()
