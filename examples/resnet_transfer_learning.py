"""Extension demo: secure ResNet + momentum + checkpointing.

Combines the reproduction's extension features in one workflow:

1. train a small secure ResNet (Section 7.7's "more advanced models"
   claim) with momentum SGD — both run entirely on shares;
2. checkpoint the shared model (one archive per server, each useless
   alone);
3. reload into a fresh deployment and fine-tune only the head (frozen
   feature extractor), the setting where delta compression pays.

Run:  python examples/resnet_transfer_learning.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core import (
    FrameworkConfig,
    MomentumSGD,
    SecureContext,
    SecureResNet,
    SharedTensor,
    load_model,
    save_model,
)
from repro.datasets import cifar10_like

IMAGE = (12, 12, 1)
FEATURES = 144


def _clear_grads(layer) -> None:
    """Drop pending gradients on a layer and its nested sub-layers."""
    for attr in ("_grad_w", "_grad_b"):
        if getattr(layer, attr, None) is not None:
            setattr(layer, attr, None)
    for value in vars(layer).values():
        if hasattr(value, "__dict__") and hasattr(value, "forward"):
            _clear_grads(value)


def train(ctx, model, x, y, *, epochs, lr, batch=32, freeze_below=None):
    opt = MomentumSGD(lr=lr, momentum=0.875)
    losses = []
    for _ in range(epochs):
        for lo in range(0, x.shape[0] - batch + 1, batch):
            xb = SharedTensor.from_plain(ctx, x[lo : lo + batch], label="x")
            yb = SharedTensor.from_plain(ctx, y[lo : lo + batch], label="y")
            pred = model.forward(xb, training=True)
            model.backward(pred - yb)
            if freeze_below is not None:
                for layer in model.layers[:freeze_below]:
                    _clear_grads(layer)
            opt.step(model)
            losses.append(float(np.mean((pred.decode() - y[lo : lo + batch]) ** 2)))
    return losses


def main() -> None:
    rng = np.random.default_rng(0)
    x, _ = cifar10_like(128, seed=1, image_shape=IMAGE)
    proj = rng.normal(size=(FEATURES, 4)) * 0.2
    y = np.tanh(x @ proj)  # a learnable planted target

    # 1. train the base model securely
    ctx = SecureContext(FrameworkConfig.parsecureml(seed=5))
    model = SecureResNet(ctx, IMAGE, channels=2, n_blocks=1, n_out=4)
    losses = train(ctx, model, x, y, epochs=6, lr=0.03)
    print(f"base training loss: {losses[0]:.4f} -> {losses[-1]:.4f}")

    # 2. checkpoint: each server persists only its share
    ckpt_dir = Path(tempfile.mkdtemp()) / "resnet-ckpt"
    save_model(model, ckpt_dir)
    print(f"checkpointed to {ckpt_dir} "
          f"({[p.name for p in sorted(ckpt_dir.iterdir())]})")

    # 3. reload into a fresh deployment and fine-tune only the head
    ctx2 = SecureContext(FrameworkConfig.parsecureml(seed=6))
    model2 = SecureResNet(ctx2, IMAGE, channels=2, n_blocks=1, n_out=4)
    load_model(model2, ckpt_dir)
    for a, b in zip(model.parameters(), model2.parameters()):
        assert np.array_equal(a.decode(), b.decode())
    print("reload check: parameters identical across deployments ✓")

    x_new, _ = cifar10_like(96, seed=2, image_shape=IMAGE)
    y_new = np.tanh(x_new @ proj)  # same task family, new data
    ft_losses = train(
        ctx2, model2, x_new, y_new, epochs=2, lr=0.05,
        freeze_below=len(model2.layers) - 1,  # only the dense head learns
    )
    print(f"fine-tune loss (head only): {ft_losses[0]:.4f} -> {ft_losses[-1]:.4f}")
    stats = ctx2.compression_stats
    print(f"fine-tune comm: {stats.wire_bytes / 1e6:.2f} MB wire vs "
          f"{stats.raw_bytes / 1e6:.2f} MB raw "
          f"({stats.savings_fraction:.1%} saved — conv workloads are "
          f"activation-stream-dominated, so frozen tiny filters barely move "
          f"the total; see examples/secure_inference_service.py for the "
          f"weight-heavy case)")


if __name__ == "__main__":
    main()
