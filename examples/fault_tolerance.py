"""Fault tolerance: adversarial networks, recovery, and chaos equivalence.

Walks the `repro.faults` subsystem end to end:

1. train a small secure MLP on a *fault-free* deployment (the reference);
2. re-run the identical workload under a seeded :class:`repro.FaultPlan`
   that drops traffic and crashes a server mid-training — the trainer
   checkpoints shares every K batches, restarts the blamed party and
   replays from the checkpoint;
3. verify the chaos-equivalence property: the recovered run's final
   weights are **bit-identical** to the fault-free run, while its
   makespan and ``faults.*`` telemetry show what the recovery cost;
4. demonstrate an unrecoverable plan: blame lands on the party that
   stopped responding, via :class:`repro.PartyFailure`.

Run:  python examples/fault_tolerance.py
"""

import numpy as np

import repro


def build_and_train(fault_plan=None):
    """One deterministic training run; everything but the plan held fixed."""
    ctx = repro.api.session(
        activation_protocol="emulated",  # the large-tensor comparison path
        fault_plan=fault_plan,
    )
    model = repro.SecureMLP(ctx, 16, hidden=(8,), n_out=3)
    rng = np.random.default_rng(42)
    x = rng.normal(size=(64, 16)) * 0.25
    y = rng.normal(size=(64, 3)) * 0.25
    trainer = repro.SecureTrainer(
        ctx, model, lr=0.0625, checkpoint_every=2, max_restarts=2
    )
    report = trainer.train(x, y, epochs=1, batch_size=16)
    weights = [(p.shares[0].copy(), p.shares[1].copy()) for p in model.parameters()]
    return ctx, report, weights


def main() -> None:
    # 1. The reference: no faults.
    _, clean_report, clean_weights = build_and_train()
    print(f"fault-free run: {clean_report.batches} batches, "
          f"online {clean_report.online_s * 1e3:.2f} ms")

    # 2. The same workload on a hostile network: 10% of inter-server
    #    messages vanish, and server1 dies at batch 4.  The plan is
    #    seeded, so this exact failure history replays bit-for-bit.
    plan = repro.FaultPlan(
        seed=7,
        drop=0.10,
        crashes=(repro.PartyCrash("server1", at_step=4),),
    )
    ctx, faulty_report, faulty_weights = build_and_train(plan)
    print(f"\nunder {plan.describe()}:")
    print(f"  online {faulty_report.online_s * 1e3:.2f} ms "
          f"({faulty_report.online_s / clean_report.online_s:.2f}x the clean run)")
    print(f"  party restarts      : {faulty_report.party_restarts}")
    print(f"  batches replayed    : {faulty_report.batches_replayed}")
    print(f"  checkpoints written : {faulty_report.checkpoints_written}")

    snap = ctx.telemetry.snapshot()
    for name in ("faults.injected", "faults.retransmits", "faults.retransmit_bytes",
                 "faults.timeouts", "faults.party_restarts"):
        print(f"  {name:<24}: {snap.counter(name):g}")

    # 3. Chaos equivalence: recovery changed the makespan and the
    #    counters above — and nothing else.
    identical = all(
        np.array_equal(a0, b0) and np.array_equal(a1, b1)
        for (a0, a1), (b0, b1) in zip(clean_weights, faulty_weights)
    )
    print(f"\nfinal weights bit-identical to fault-free run: {identical}")
    assert identical

    # 4. An unrecoverable network: every inter-server message is lost.
    #    The retry budget exhausts and blame names the silent party.
    try:
        build_and_train(repro.FaultPlan(drop=1.0))
    except repro.PartyFailure as failure:
        print(f"\nunrecoverable plan -> {failure.blame.render()}")


if __name__ == "__main__":
    main()
