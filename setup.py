"""Legacy setup shim.

The environment ships setuptools without the ``wheel`` package and has no
network access, so PEP-517 editable installs cannot build a wheel.  This
shim lets ``pip install -e . --no-build-isolation`` fall back to the
setup.py develop path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
