"""Ablation — profiling-guided adaptive placement vs forced placement.

Section 4.2's claim: putting *everything* on the GPU loses to adaptive
placement (the paper measured 4.5% degradation from moving the cheap
offline steps to the GPU), and CPU-only obviously loses on the big
GEMMs.  We run a small and a large workload under the three placement
modes.

Shape claims: on the small workload, forced-GPU is no better than
adaptive (PCIe + launch overheads); on the large workload, forced-CPU
is far worse; adaptive is within a whisker of the best mode on both.
"""

import numpy as np

from repro.bench.reporting import format_table
from repro.core.config import FrameworkConfig
from repro.core.context import SecureContext
from repro.core.models import SecureLinearRegression
from repro.core.training import SecureTrainer

MODES = ["adaptive", "cpu_always", "gpu_always"]


def run(features: int, mode: str) -> float:
    cfg = FrameworkConfig.parsecureml(placement_mode=mode, activation_protocol="emulated")
    ctx = SecureContext(cfg)
    rng = np.random.default_rng(0)
    x = rng.normal(size=(256, features)) * 0.5
    y = rng.normal(size=(256, 10)) * 0.1
    model = SecureLinearRegression(ctx, features, n_out=10)
    rep = SecureTrainer(ctx, model, monitor_loss=False).train(x, y, epochs=1, batch_size=128)
    return rep.marginal_online_s


def test_placement_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: {
            (size, mode): run(features, mode)
            for size, features in (("small", 16), ("large", 4096))
            for mode in MODES
        },
        rounds=1,
        iterations=1,
    )
    print()
    rows = [
        {"workload": size, "mode": mode, "online s/batch": v}
        for (size, mode), v in sorted(results.items())
    ]
    print(format_table(rows, ["workload", "mode", "online s/batch"],
                       title="Ablation: adaptive vs forced placement (Section 4.2)"))
    for size in ("small", "large"):
        adaptive = results[(size, "adaptive")]
        best_forced = min(results[(size, "cpu_always")], results[(size, "gpu_always")])
        assert adaptive <= best_forced * 1.05, (
            f"{size}: adaptive must track the better device"
        )
    # small workloads: the GPU detour does not pay
    assert results[("small", "gpu_always")] >= results[("small", "adaptive")]
    # large workloads: CPU-only collapses
    assert results[("large", "cpu_always")] > 3 * results[("large", "adaptive")]
