"""Workload-suite regression guards (plain pytest, CI smoke).

Replays the attention + recsys suite behind ``--workloads`` with the
exact parameters recorded in the committed ``BENCH_workloads.json`` and
checks, per (model, mode, compression) row:

* message counts are *exactly* the committed ones — the simulation is
  deterministic, so any drift is a protocol regression, not noise;
* the simulated online makespan has not regressed beyond 10% headroom;
* the recsys CSR story still holds: inference with delta compression on
  ships strictly fewer bytes than the dense run of the same workload,
  and its wire bytes undercut its raw bytes (the static embedding-table
  stream collapsing to all-zero CSR deltas — DESIGN §7).

Runs standalone:
``PYTHONPATH=src python -m pytest benchmarks/test_workload_regression.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.harness import run_workload_figures
from repro.core.config import FrameworkConfig

BENCH_REFERENCE = Path(__file__).resolve().parents[1] / "BENCH_workloads.json"


@pytest.fixture(scope="module")
def reference() -> list[dict]:
    if not BENCH_REFERENCE.exists():
        pytest.skip("no committed BENCH_workloads.json reference")
    return json.loads(BENCH_REFERENCE.read_text())["rows"]


@pytest.fixture(scope="module")
def fresh(reference):
    """Re-run the suite with the committed run's parameters."""
    first = reference[0]
    cfg = FrameworkConfig.parsecureml(
        activation_protocol="emulated",
        runtime=first.get("runtime", "lockstep"),
        backend=first.get("backend", "beaver2pc"),
    )
    rows = run_workload_figures(
        cfg,
        n_batches=first["batches"],
        batch_size=first["batch_size"],
        seed=first["seed"],
    )
    return {(r.model, r.mode, r.compression): r for r in rows}


def _ref_rows(reference) -> dict[tuple, dict]:
    return {(r["model"], r["mode"], r["compression"]): r for r in reference}


def test_reference_covers_both_workloads(reference):
    keys = set(_ref_rows(reference))
    assert ("attention", "train", True) in keys
    assert ("attention", "infer", True) in keys
    assert ("recsys", "train", True) in keys
    assert ("recsys", "infer", True) in keys
    assert ("recsys", "infer", False) in keys


def test_message_counts_match_reference(fresh, reference):
    for key, ref in _ref_rows(reference).items():
        row = fresh.get(key)
        assert row is not None, f"suite no longer produces row {key}"
        assert row.comm_messages == ref["comm_messages"], (
            f"{key}: {row.comm_messages} msgs vs committed "
            f"{ref['comm_messages']} — protocol round structure changed"
        )


def test_online_makespan_no_regression(fresh, reference):
    for key, ref in _ref_rows(reference).items():
        row = fresh[key]
        assert row.online_s <= ref["online_s"] * 1.10, (
            f"{key}: online makespan {row.online_s:.6f}s vs committed "
            f"{ref['online_s']:.6f}s (>10% regression)"
        )


def test_csr_reduces_recsys_wire_bytes(fresh, reference):
    refs = _ref_rows(reference)
    for rows, get in ((refs, lambda r, f: r[f]), (fresh, lambda r, f: getattr(r, f))):
        csr = rows[("recsys", "infer", True)]
        dense = rows[("recsys", "infer", False)]
        assert get(csr, "comm_bytes") < get(dense, "comm_bytes")
        assert get(csr, "wire_comm_bytes") < get(csr, "raw_comm_bytes")
        # dense accounting charges raw bytes straight through
        assert get(dense, "wire_comm_bytes") == get(dense, "raw_comm_bytes")
