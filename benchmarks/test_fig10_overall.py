"""Fig. 10 — overall speedup of ParSecureML over SecureML.

Paper: average 33.8x across six models and five datasets, with larger
datasets seeing larger speedups and MNIST the smallest.  Shape claims:
every cell > 1x, the geomean lands in the tens, and the large-image
datasets (VGGFace2/NIST) beat MNIST.
"""

from conftest import grid_cells
from repro.bench.reporting import format_speedup_series, geomean


def build_speedups(grid):
    labels, speedups = [], []
    for model, dataset in grid_cells():
        par = grid.par(model, dataset)
        sml = grid.sml(model, dataset)
        labels.append(f"{dataset}/{model}")
        speedups.append(sml.total_s() / par.total_s())
    return labels, speedups


def test_fig10(grid, benchmark):
    labels, speedups = benchmark.pedantic(lambda: build_speedups(grid), rounds=1, iterations=1)
    print()
    print(format_speedup_series(labels, speedups,
                                title="Fig. 10: overall speedup, ParSecureML over SecureML (paper avg 33.8x)"))
    assert all(s > 1.0 for s in speedups), "ParSecureML must win every cell"
    g = geomean(speedups)
    assert 5.0 < g < 120.0, f"geomean {g:.1f}x out of the paper's order of magnitude"
    by_ds = {}
    for label, s in zip(labels, speedups):
        by_ds.setdefault(label.split("/")[0], []).append(s)
    if "VGGFace2" in by_ds and "MNIST" in by_ds:
        assert geomean(by_ds["VGGFace2"]) > geomean(by_ds["MNIST"]), (
            "larger datasets must benefit more (paper Section 7.2 obs. 3)"
        )
