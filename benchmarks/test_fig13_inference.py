"""Fig. 13 — inference (forward-pass) speedup of ParSecureML.

Paper: average 31.7x.  Linear regression stands in for SVM as well (the
paper: "the inference results of both linear regression and SVM are
calculated by w^T x + b, so we only show the result of linear
regression").  Shape claims: > 1x everywhere, geomean in the tens-ish
range, comparable to the training speedup.
"""

from conftest import grid_cells
from repro.bench.reporting import format_speedup_series, geomean


def cells():
    # the paper's Fig. 13 set: drop SVM (folded into linear)
    return [(m, d) for (m, d) in grid_cells() if m != "SVM"]


def build(grid):
    labels, speedups = [], []
    for model, dataset in cells():
        par = grid.par_infer(model, dataset)
        sml = grid.sml_infer(model, dataset)
        labels.append(f"{dataset}/{model}")
        speedups.append(sml.total_s() / par.total_s())
    return labels, speedups


def test_fig13(grid, benchmark):
    labels, speedups = benchmark.pedantic(lambda: build(grid), rounds=1, iterations=1)
    print()
    print(format_speedup_series(labels, speedups,
                                title="Fig. 13: secure inference speedup (paper avg 31.7x)"))
    assert all(s > 1.0 for s in speedups)
    g = geomean(speedups)
    assert 1.5 < g < 120.0
