"""Ablation — offline triplet strategies: client-aided dealer vs OT.

ParSecureML's offline phase relies on the client acting as a trusted
dealer; the original SecureML also specifies a dealer-free OT-based
offline whose cost is what made SecureML's end-to-end times painful.
This ablation prices both strategies for the paper's benchmark shapes
(using the OT cost model validated against the real OT implementation
in ``repro/mpc/ot_triplets.py``).

Shape claims: OT offline is orders of magnitude above the dealer for
every workload, and the gap *grows* with matrix size — the quantitative
justification for the client-aided design the paper builds on.
"""

from repro.bench.reporting import format_table
from repro.mpc.ot_triplets import ot_triplet_offline_cost
from repro.simgpu.cost import V100_SPEC, XEON_E5_2670V3_SPEC as CPU

# (label, (m, k, n)) — triplet shapes of representative paper workloads
SHAPES = [
    ("MNIST MLP layer", (128, 784, 128)),
    ("CIFAR-10 MLP layer", (128, 3072, 128)),
    ("VGGFace2 MLP layer", (128, 40000, 128)),
]


def dealer_cost(m: int, k: int, n: int) -> float:
    """Client-aided dealer: RNG + Z=U@V on the client GPU + upload."""
    rng_s = CPU.rng_seconds(8 * (m * k + k * n), parallel=True)
    gemm_s = V100_SPEC.gemm_seconds(m, k, n) + V100_SPEC.transfer_seconds(
        8 * (m * k + k * n + m * n)
    )
    upload_s = 3 * 8 * (m * k + k * n + m * n) / (12.0 * 1e9)
    return rng_s + gemm_s + upload_s


def ot_cost(m: int, k: int, n: int) -> float:
    """Dealer-free OT offline for one matrix triplet.

    A matrix triplet needs m*k*n scalar products' worth of cross terms
    (the Gilboa construction per inner-product element).
    """
    seconds, _ = ot_triplet_offline_cost(m * k * n)
    return seconds


def test_offline_strategy(benchmark):
    rows = benchmark.pedantic(
        lambda: [
            {
                "workload": label,
                "dealer (s)": dealer_cost(*shape),
                "OT-based (s)": ot_cost(*shape),
                "ratio": ot_cost(*shape) / dealer_cost(*shape),
            }
            for label, shape in SHAPES
        ],
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(rows, ["workload", "dealer (s)", "OT-based (s)", "ratio"],
                       title="Ablation: offline triplet generation strategies"))
    ratios = [r["ratio"] for r in rows]
    assert all(r > 100 for r in ratios), "OT offline must be orders of magnitude costlier"
    assert ratios[-1] > ratios[0], "the gap grows with matrix size"
