"""Fig. 12 — offline-phase speedup of ParSecureML over SecureML.

Paper: ~1.3x, similar across benchmarks — modest, because only the
``Z = U x V`` product (and, where profitable, encryption) moves to the
GPU while the rest of the offline phase is unchanged shared
infrastructure.  Shape claims: offline speedups are small single-digit
factors, far below the online speedups, and relatively uniform.
"""

from conftest import grid_cells
from repro.bench.reporting import format_speedup_series, geomean


def build(grid):
    labels, offline, online = [], [], []
    for model, dataset in grid_cells():
        par = grid.par(model, dataset)
        sml = grid.sml(model, dataset)
        labels.append(f"{dataset}/{model}")
        offline.append(sml.offline_s() / par.offline_s())
        online.append(sml.online_s() / par.online_s())
    return labels, offline, online


def test_fig12(grid, benchmark):
    labels, offline, online = benchmark.pedantic(lambda: build(grid), rounds=1, iterations=1)
    print()
    print(format_speedup_series(labels, offline,
                                title="Fig. 12: offline speedup (paper ~1.3x, modest & uniform)"))
    assert all(s >= 0.95 for s in offline)
    g_off, g_on = geomean(offline), geomean(online)
    assert g_off < 10.0, f"offline speedup {g_off:.1f}x should be modest"
    assert g_off < g_on / 2, "offline acceleration is far below online"
    # relatively uniform across benchmarks (same dominant costs)
    assert max(offline) / min(offline) < 25
