"""Shared session state for the benchmark suite.

Each benchmark file regenerates one table or figure of the paper's
Section 7.  The expensive part — running every (model, dataset) cell
under multiple system configurations — is memoised in a session-scoped
:class:`GridRunner`, so cells are computed once no matter how many
figures consume them.

Environment knobs:

* ``REPRO_BENCH_BATCHES``  — real batches measured per cell (default 2);
* ``REPRO_BENCH_QUICK=1``  — restrict the grid to MNIST + SYNTHETIC
  (a fast smoke of every figure's machinery);
* ``REPRO_BENCH_FULL_SCALE=1`` — run NIST at the paper's 512x512.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import (
    run_plain,
    run_plain_inference,
    run_secure,
    run_secure_inference,
)
from repro.bench.workloads import benchmark_grid
from repro.core.config import FrameworkConfig

BATCH_SIZE = 128
N_BATCHES = int(os.environ.get("REPRO_BENCH_BATCHES", "2"))
QUICK = os.environ.get("REPRO_BENCH_QUICK", "0") == "1"
FULL_SCALE = os.environ.get("REPRO_BENCH_FULL_SCALE", "0") == "1"

# Benchmarks use the cost-identical emulated comparison so very large
# activation tensors stay tractable in pure Python (value- and
# accounting-parity with the real protocol is asserted in tests/).
PAR_CONFIG = FrameworkConfig.parsecureml(activation_protocol="emulated", trace=False)
SML_CONFIG = FrameworkConfig.secureml(activation_protocol="emulated", trace=False)


def grid_cells() -> list[tuple[str, str]]:
    cells = benchmark_grid()
    if QUICK:
        cells = [(m, d) for (m, d) in cells if d in ("MNIST", "SYNTHETIC")]
    return cells


class GridRunner:
    """Lazily computes and memoises per-cell results."""

    def __init__(self):
        self._cache: dict[tuple, object] = {}

    def _memo(self, key, fn):
        if key not in self._cache:
            self._cache[key] = fn()
        return self._cache[key]

    def _kw(self):
        return dict(n_batches=N_BATCHES, batch_size=BATCH_SIZE, full_scale=FULL_SCALE)

    def par(self, model, dataset, **overrides):
        cfg = PAR_CONFIG.but(**overrides) if overrides else PAR_CONFIG
        key = ("par", model, dataset, tuple(sorted(overrides.items())))
        return self._memo(key, lambda: run_secure(model, dataset, cfg, **self._kw()))

    def sml(self, model, dataset):
        key = ("sml", model, dataset)
        return self._memo(key, lambda: run_secure(model, dataset, SML_CONFIG, **self._kw()))

    def plain_cpu(self, model, dataset):
        key = ("cpu", model, dataset)
        return self._memo(key, lambda: run_plain(model, dataset, "cpu", **self._kw()))

    def plain_gpu(self, model, dataset):
        key = ("gpu", model, dataset)
        return self._memo(
            key, lambda: run_plain(model, dataset, "gpu", tensor_core=True, **self._kw())
        )

    def par_infer(self, model, dataset):
        key = ("par-inf", model, dataset)
        return self._memo(
            key,
            lambda: run_secure_inference(
                model, dataset, PAR_CONFIG, n_batches=N_BATCHES, batch_size=BATCH_SIZE
            ),
        )

    def sml_infer(self, model, dataset):
        key = ("sml-inf", model, dataset)
        return self._memo(
            key,
            lambda: run_secure_inference(
                model, dataset, SML_CONFIG, n_batches=N_BATCHES, batch_size=BATCH_SIZE
            ),
        )


@pytest.fixture(scope="session")
def grid():
    return GridRunner()
