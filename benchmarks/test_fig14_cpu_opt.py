"""Fig. 14 — benefit of the Section 5.1 CPU parallelism.

Paper: disabling the parallel RNG + parallel add/sub costs ~10.71% on
average, with larger benefits on larger images (VGGFace2 17.6% vs MNIST
8.7%) because bigger matrices schedule across threads without cache-line
races.  Shape claims: the optimisation always helps, and the big-image
datasets gain at least as much as MNIST.
"""

from conftest import grid_cells
from repro.bench.reporting import format_table, geomean


def build(grid):
    rows = []
    for model, dataset in grid_cells():
        with_opt = grid.par(model, dataset)
        without = grid.par(model, dataset, cpu_parallel=False, client_parallel=False)
        gain = without.total_s() / with_opt.total_s() - 1.0
        rows.append(
            {"benchmark": f"{dataset}/{model}", "improvement": gain}
        )
    return rows


def test_fig14(grid, benchmark):
    rows = benchmark.pedantic(lambda: build(grid), rounds=1, iterations=1)
    print()
    printable = [
        {"benchmark": r["benchmark"], "CPU-parallelism benefit": f"{r['improvement']:+.1%}"}
        for r in rows
    ]
    print(format_table(printable, ["benchmark", "CPU-parallelism benefit"],
                       title="Fig. 14: CPU optimisation benefit (paper avg +10.7%)"))
    gains = [r["improvement"] for r in rows]
    assert all(g > -0.005 for g in gains), "the optimisation must never hurt"
    mean_gain = sum(gains) / len(gains)
    assert 0.01 < mean_gain < 3.0, f"mean gain {mean_gain:.1%} out of plausible band"
    # The paper's second observation is that the benefit *varies greatly*
    # across datasets and models (its mechanism — cache-line scheduling —
    # favours big images; ours — comparison-heavy CPU work — favours the
    # CNN cells).  The robust shape claim is the spread itself.
    assert max(gains) > 1.5 * min(gains), "benefit varies across the grid (paper obs. 2/3)"
