"""Table 2 — slowdown vs original *non-secure GPU* machine learning.

Paper: SecureML is on average 249.34x slower than plain GPU training;
ParSecureML shrinks the gap to 10.98x.  Shape claims: SecureML's gap is
an order of magnitude (or more) above ParSecureML's in every cell;
MNIST rows show the smallest gaps (small images); the averages keep the
paper's ordering and rough magnitudes.
"""

from conftest import grid_cells
from repro.bench.reporting import format_table, geomean


def build(grid):
    rows = []
    for model, dataset in grid_cells():
        gpu = grid.plain_gpu(model, dataset)
        sml = grid.sml(model, dataset)
        par = grid.par(model, dataset)
        rows.append(
            {
                "Dataset": dataset,
                "Model": model,
                "GPU time (s)": gpu.total_s(),
                "SecureML slowdown (x)": sml.total_s() / gpu.total_s(),
                "ParSecureML slowdown (x)": par.total_s() / gpu.total_s(),
            }
        )
    return rows


def test_table2(grid, benchmark):
    rows = benchmark.pedantic(lambda: build(grid), rounds=1, iterations=1)
    print()
    print(format_table(
        rows,
        ["Dataset", "Model", "GPU time (s)", "SecureML slowdown (x)", "ParSecureML slowdown (x)"],
        title="Table 2: slowdown vs non-secure GPU training (paper avgs: 249.3x vs 11.0x)",
    ))
    sml_gaps = [r["SecureML slowdown (x)"] for r in rows]
    par_gaps = [r["ParSecureML slowdown (x)"] for r in rows]
    for s, p in zip(sml_gaps, par_gaps):
        assert s > 1.5 * p, "ParSecureML must close most of the gap in every cell"
    assert geomean(sml_gaps) > 4 * geomean(par_gaps)
    # MNIST shows the lowest SecureML gap among image datasets (obs. 3)
    by_ds = {}
    for r in rows:
        by_ds.setdefault(r["Dataset"], []).append(r["SecureML slowdown (x)"])
    if "MNIST" in by_ds and "VGGFace2" in by_ds:
        assert geomean(by_ds["MNIST"]) < geomean(by_ds["VGGFace2"])
