"""Dataflow runtime regression guards (plain pytest, CI smoke).

The event-driven scheduler (``runtime="dataflow"``,
:mod:`repro.runtime.dataflow`) must extract overlap, never invent cost:

* the Fig. 10 MLP/MNIST online makespan under dataflow is no worse
  than the live lockstep run *and* no worse than the hand-tuned
  pipeline numbers committed in ``BENCH_wire.json`` (the lockstep
  baseline cell those pipelines produced);
* the Fig. 12-style offline makespan (client dealer work) is likewise
  monotone non-increasing;
* the schedule change is cost-only: decoded predictions are
  bit-identical across runtimes (the conformance sweep covers all six
  models; this is the bench-cell spot check).

Runs standalone:
``PYTHONPATH=src python -m pytest benchmarks/test_runtime_regression.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.bench.harness import build_secure_model, load_workload
from repro.core.config import FrameworkConfig
from repro.core.context import SecureContext
from repro.core.inference import secure_predict
from repro.core.training import SecureTrainer

N_BATCHES = 2
BATCH_SIZE = 128
BENCH_REFERENCE = Path(__file__).resolve().parents[1] / "BENCH_wire.json"


def _run_cell(runtime: str):
    """One Fig. 10 MLP/MNIST cell: train, snapshot, predict."""
    x, y, spec = load_workload(
        "MLP", "MNIST", n_batches=N_BATCHES, batch_size=BATCH_SIZE, seed=0
    )
    cfg = FrameworkConfig.parsecureml(activation_protocol="emulated", runtime=runtime)
    ctx = SecureContext.create(cfg)
    model = build_secure_model(ctx, spec)
    SecureTrainer(ctx, model, lr=0.03125, monitor_loss=False).train(
        x, y, epochs=1, batch_size=BATCH_SIZE
    )
    snap = ctx.telemetry.snapshot()
    pred = secure_predict(
        ctx, model, x[:BATCH_SIZE], batch_size=BATCH_SIZE
    ).predictions
    return {
        "online_s": snap.gauge("phase.sim_seconds", clock="online"),
        "offline_s": snap.gauge("phase.sim_seconds", clock="offline"),
        "predictions": pred,
    }


@pytest.fixture(scope="module")
def lockstep():
    return _run_cell("lockstep")


@pytest.fixture(scope="module")
def dataflow():
    return _run_cell("dataflow")


def _committed_lockstep_online() -> float | None:
    if not BENCH_REFERENCE.exists():
        return None
    rows = json.loads(BENCH_REFERENCE.read_text())["rows"]
    for row in rows:
        if row.get("wire_mode") == "baseline" and row.get("model") == "MLP":
            return float(row["train_online_s"])
    return None


def test_fig10_online_makespan_no_worse_than_lockstep(lockstep, dataflow):
    assert dataflow["online_s"] <= lockstep["online_s"] * (1 + 1e-9), (
        f"dataflow online makespan regressed: {dataflow['online_s']} > "
        f"lockstep {lockstep['online_s']}"
    )


def test_fig10_online_makespan_no_worse_than_committed_reference(dataflow):
    reference = _committed_lockstep_online()
    if reference is None:
        pytest.skip("no committed BENCH_wire.json reference")
    assert dataflow["online_s"] <= reference * (1 + 1e-9), (
        f"dataflow fig10 online makespan regressed above the committed "
        f"lockstep reference: {dataflow['online_s']} > {reference}"
    )


def test_fig12_offline_makespan_no_worse_than_lockstep(lockstep, dataflow):
    assert dataflow["offline_s"] <= lockstep["offline_s"] * (1 + 1e-9)


def test_predictions_bit_identical_across_runtimes(lockstep, dataflow):
    np.testing.assert_array_equal(lockstep["predictions"], dataflow["predictions"])
