"""Fig. 2 — time breakdown of two-party computation (MLP on MNIST).

Paper (whole dataset as one batch): offline encrypt 62.68 s dominates
the offline phase (transmit 0.21 s); online compute2 (the big product)
95.52 s dominates the online phase over compute1 (0.19 s) and the
communicate step (0.24 s).  Shape claims: encrypt >> transmit within
offline; the GPU-operation step >> reconstruct within online.
"""

import numpy as np

from repro.bench.reporting import format_table
from repro.core.config import FrameworkConfig
from repro.core.context import SecureContext
from repro.core.models import SecureMLP
from repro.core.training import SecureTrainer
from repro.datasets import mnist_like
from repro.pipeline.timeline import summarize


def build_breakdown():
    # SecureML mode (the figure profiles the *unaccelerated* flow), with
    # tracing on so the timeline can be decomposed.
    cfg = FrameworkConfig.secureml(activation_protocol="emulated", trace=True)
    ctx = SecureContext(cfg)
    x, y = mnist_like(512, seed=0)
    model = SecureMLP(ctx, 784)
    SecureTrainer(ctx, model, monitor_loss=False).train(x, y, epochs=1, batch_size=128)

    # offline split: client compute (encrypt/triplets) vs uplink transmit
    off = summarize(ctx.offline_clock)
    encrypt_s = off.busy_seconds.get("client.cpu", 0.0)
    transmit_s = sum(v for k, v in off.busy_seconds.items() if k.startswith("link."))

    # online split: reconstruct (E/F/combine/comparisons on CPU) vs the
    # big product (cpu_gemm in SecureML mode) vs inter-server comm
    gemm_s = reconstruct_s = comm_s = 0.0
    for task in ctx.online_clock.trace:
        if task.resource.startswith("link."):
            comm_s += task.duration / 2  # two symmetric directions
        elif "cpu_gemm" in task.label:
            gemm_s += task.duration / 2  # two servers run in parallel
        else:
            reconstruct_s += task.duration / 2
    return {
        "offline/encrypt (s)": encrypt_s,
        "offline/transmit (s)": transmit_s,
        "online/reconstruct aka compute1 (s)": reconstruct_s,
        "online/communicate (s)": comm_s,
        "online/compute2 aka big product (s)": gemm_s,
    }


def test_fig2(benchmark):
    parts = benchmark.pedantic(build_breakdown, rounds=1, iterations=1)
    print()
    rows = [{"step": k, "seconds": v} for k, v in parts.items()]
    print(format_table(rows, ["step", "seconds"], title="Fig. 2: two-party computation breakdown (MLP/MNIST, SecureML mode)"))
    # Shape claims from the paper's figure:
    assert parts["offline/encrypt (s)"] > 5 * parts["offline/transmit (s)"]
    assert parts["online/compute2 aka big product (s)"] > 3 * parts["online/reconstruct aka compute1 (s)"]
    assert parts["online/compute2 aka big product (s)"] > 10 * parts["online/communicate (s)"]
