"""Pooled offline phase regression guards (plain pytest, CI smoke).

Three invariants of the batched provisioning work, checked on the
Fig. 12 / Fig. 11 MLP+MNIST cell so CI catches a regression in either
the simulated cost model or the real (wall-clock) fused generators:

* pooled + mask-reuse training never costs more simulated offline time
  than the per-op dealer, and its online makespan is no worse (Fig. 12);
* pooled + mask-reuse inference is strictly faster online (Fig. 11 —
  static weights make every post-first-batch F exchange a cache hit);
* the fused batch generator beats per-triplet generation in wall-clock
  (vectorised mask draws + one stacked ring GEMM vs B separate passes).

Runs standalone: ``PYTHONPATH=src python -m pytest benchmarks/test_pool_regression.py``.
"""

from __future__ import annotations

import dataclasses
import time

from repro.bench.harness import run_secure, run_secure_inference
from repro.core.config import FrameworkConfig
from repro.core.context import SecureContext

N_BATCHES = 3


def _configs():
    par = FrameworkConfig.parsecureml(activation_protocol="emulated")
    pooled = dataclasses.replace(par, pool_size=8, static_mask_reuse=True)
    return par, pooled


def test_fig12_pooled_offline_no_worse_and_strictly_faster_total():
    par, pooled = _configs()
    base = run_secure("MLP", "MNIST", par, n_batches=N_BATCHES, batch_size=128, seed=0)
    pool = run_secure("MLP", "MNIST", pooled, n_batches=N_BATCHES, batch_size=128, seed=0)
    base_off, pool_off = base.offline_s(N_BATCHES), pool.offline_s(N_BATCHES)
    base_on, pool_on = base.online_s(N_BATCHES), pool.online_s(N_BATCHES)
    assert pool_off < base_off, (
        f"pooled offline {pool_off:.6f}s should beat per-op dealer {base_off:.6f}s"
    )
    assert pool_on <= base_on * (1 + 1e-9), (
        f"pooled online {pool_on:.6f}s regressed vs {base_on:.6f}s"
    )


def test_fig11_reuse_online_strictly_faster():
    par, pooled = _configs()
    base = run_secure_inference("MLP", "MNIST", par, n_batches=N_BATCHES, batch_size=128, seed=0)
    pool = run_secure_inference("MLP", "MNIST", pooled, n_batches=N_BATCHES, batch_size=128, seed=0)
    base_on, pool_on = base.online_s(N_BATCHES), pool.online_s(N_BATCHES)
    assert pool_on < base_on, (
        f"pooled+reuse online {pool_on:.6f}s should beat per-op dealer {base_on:.6f}s"
    )


def test_fused_batch_generation_wall_clock():
    """One stacked refill beats B per-triplet dealer passes in real time."""
    shape_a, shape_b, count = (64, 128), (128, 64), 8

    def fused():
        ctx = SecureContext(FrameworkConfig.parsecureml(pool_size=count))
        start = time.perf_counter()
        ctx._gen_matrix_triplet_batch(shape_a, shape_b, count)
        return time.perf_counter() - start

    def singles():
        ctx = SecureContext(FrameworkConfig.parsecureml())
        start = time.perf_counter()
        for _ in range(count):
            ctx.gen_matrix_triplet(shape_a, shape_b)
        return time.perf_counter() - start

    best_fused = min(fused() for _ in range(3))
    best_singles = min(singles() for _ in range(3))
    assert best_fused < best_singles, (
        f"fused {best_fused * 1e3:.2f}ms should beat {count} singles "
        f"{best_singles * 1e3:.2f}ms"
    )
