"""Ablation — the double pipeline's two halves (DESIGN.md ablation 1).

The paper motivates *both* pipelines (Section 4.3): pipeline 1 overlaps
PCIe transfers with the Eq. 8 sub-kernels (Fig. 5), pipeline 2 overlaps
reconstruct steps across layers (Fig. 6).  This ablation measures the
online time of a multi-layer MLP under all four on/off combinations.

Shape claims: each pipeline helps on its own; both together are at
least as good as either alone; numerics are untouched (asserted in
tests/test_integration.py).
"""

import numpy as np

from repro.bench.reporting import format_table
from repro.core.config import FrameworkConfig
from repro.core.context import SecureContext
from repro.core.models import SecureMLP
from repro.core.training import SecureTrainer


def run_config(pipeline1: bool, double_pipeline: bool) -> float:
    cfg = FrameworkConfig.parsecureml(
        pipeline1=pipeline1,
        double_pipeline=double_pipeline,
        placement_mode="gpu_always",  # pipelines act on the GPU path
        activation_protocol="emulated",
    )
    ctx = SecureContext(cfg)
    rng = np.random.default_rng(0)
    x = rng.normal(size=(256, 512)) * 0.5
    y = rng.normal(size=(256, 10)) * 0.1
    model = SecureMLP(ctx, 512, hidden=(256, 128), n_out=10)
    rep = SecureTrainer(ctx, model, monitor_loss=False).train(x, y, epochs=1, batch_size=128)
    return rep.marginal_online_s


def test_ablation_pipeline(benchmark):
    results = benchmark.pedantic(
        lambda: {
            (p1, p2): run_config(p1, p2) for p1 in (False, True) for p2 in (False, True)
        },
        rounds=1,
        iterations=1,
    )
    print()
    rows = [
        {
            "pipeline1 (Fig.5)": "on" if p1 else "off",
            "pipeline2 (Fig.6)": "on" if p2 else "off",
            "online s/batch": v,
            "vs none": f"{results[(False, False)] / v:.2f}x",
        }
        for (p1, p2), v in sorted(results.items())
    ]
    print(format_table(rows, ["pipeline1 (Fig.5)", "pipeline2 (Fig.6)", "online s/batch", "vs none"],
                       title="Ablation: double-pipeline components"))
    none = results[(False, False)]
    only_p1 = results[(True, False)]
    only_p2 = results[(False, True)]
    both = results[(True, True)]
    assert only_p1 < none, "pipeline 1 must help"
    assert only_p2 < none, "pipeline 2 must help"
    assert both <= min(only_p1, only_p2) + 1e-12, "the combination dominates"
