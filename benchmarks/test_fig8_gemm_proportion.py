"""Fig. 8 — share of GPU time spent in GEMM, by matrix dimension.

Paper: the GEMM proportion grows with matrix size and exceeds 50% at
n = 16384, motivating the Tensor-Core optimisation.  We reproduce it by
scheduling the full secure-GEMM flow (H2D transfers + kernels + D2H) on
the simulated device and reading the kernel/transfer split.
"""

import numpy as np

from repro.bench.reporting import format_table
from repro.mpc.protocol import combine_masked, masked_difference
from repro.mpc.shares import share_secret
from repro.mpc.triplets import TripletDealer
from repro.pipeline.scheduler import schedule_secure_gemm
from repro.simgpu.clock import SimClock
from repro.simgpu.cost import V100_SPEC
from repro.simgpu.device import SimGPU

DIMS = [1024, 2048, 4096, 8192, 16384]


def gemm_fraction(n: int) -> float:
    """Run one n x n secure GEMM on the device; kernel share of total."""
    rng = np.random.default_rng(0)
    # Synthetic ring shares of the right shape (values irrelevant to
    # timing; keep allocation small by reusing one buffer pattern).
    a = rng.integers(0, 2**64, size=(n, n), dtype=np.uint64)
    clock = SimClock()
    gpu = SimGPU(clock, V100_SPEC, "g")
    # time only: charge transfers and kernels per the Fig. 5 schedule
    t_in = [
        clock.run(gpu.h2d_engine, gpu.spec.transfer_seconds(n * n * 8), label=f"h2d{i}")
        for i in range(5)
    ]
    k1 = clock.run(gpu.stream(0), gpu.spec.elementwise_seconds(2 * n * n * 8), deps=t_in[:2], label="D")
    k2 = clock.run(gpu.stream(0), gpu.spec.gemm_seconds(n, n, n), deps=(k1,), label="gemm1")
    k3 = clock.run(gpu.stream(0), gpu.spec.gemm_seconds(n, n, n), deps=(k2,), label="gemm2")
    k4 = clock.run(gpu.stream(0), gpu.spec.elementwise_seconds(3 * n * n * 8), deps=(k3,), label="sum")
    clock.run(gpu.d2h_engine, gpu.spec.transfer_seconds(n * n * 8), deps=(k4,), label="d2h")
    gemm_s = k2.duration + k3.duration
    return gemm_s / clock.now()


def test_fig8(benchmark):
    fractions = benchmark.pedantic(
        lambda: [gemm_fraction(n) for n in DIMS], rounds=1, iterations=1
    )
    print()
    rows = [
        {"dim n": n, "GEMM share of GPU time": f"{frac:.1%}"}
        for n, frac in zip(DIMS, fractions)
    ]
    print(format_table(rows, ["dim n", "GEMM share of GPU time"],
                       title="Fig. 8: GEMM time proportion vs matrix dimension"))
    # Shape: monotone increasing, crossing 50% by n = 16384.
    assert all(a <= b + 1e-9 for a, b in zip(fractions, fractions[1:]))
    assert fractions[-1] > 0.5
    assert fractions[0] < fractions[-1]
