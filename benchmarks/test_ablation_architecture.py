"""Ablation — GPU architecture: Volta (V100, Tensor Cores) vs Pascal (P100).

Section 5.2 picks Tensor Cores because "the NVIDIA Tesla V100 ...
deliver[s] a peak performance of 125 TFLOPS, resulting in a 12x increase
in throughput with standard FP32 operations compared to the NVIDIA
Pascal P100".  This ablation swaps the device spec under the same
workload.

Shape claims: the V100 deployment beats the P100 one; enabling
tensor_core on a P100 changes nothing (Pascal has none); the V100's
advantage grows with GEMM size.
"""

import numpy as np

from repro.bench.reporting import format_table
from repro.core.config import FrameworkConfig
from repro.core.context import SecureContext
from repro.core.models import SecureMLP
from repro.core.training import SecureTrainer
from repro.simgpu.cost import P100_SPEC, V100_SPEC


def run(gpu_spec, features: int, tensor_core: bool = True) -> float:
    cfg = FrameworkConfig.parsecureml(
        gpu_spec=gpu_spec,
        tensor_core=tensor_core,
        placement_mode="gpu_always",
        activation_protocol="emulated",
    )
    ctx = SecureContext(cfg)
    rng = np.random.default_rng(0)
    x = rng.normal(size=(256, features)) * 0.5
    y = rng.normal(size=(256, 10)) * 0.1
    model = SecureMLP(ctx, features, hidden=(features // 2,), n_out=10)
    rep = SecureTrainer(ctx, model, monitor_loss=False).train(x, y, epochs=1, batch_size=128)
    return rep.marginal_online_s


def test_architecture_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: {
            (spec.name, features): run(spec, features)
            for spec in (V100_SPEC, P100_SPEC)
            for features in (512, 4096)
        },
        rounds=1,
        iterations=1,
    )
    print()
    rows = [
        {"gpu": name, "features": f, "online s/batch": v}
        for (name, f), v in sorted(results.items())
    ]
    print(format_table(rows, ["gpu", "features", "online s/batch"],
                       title="Ablation: Volta (Tensor Cores) vs Pascal"))
    for features in (512, 4096):
        assert results[("tesla-v100", features)] < results[("tesla-p100", features)]
    # At the kernel level Volta's GEMM advantage grows with size (the
    # Markidis et al. observation the paper cites) ...
    small_kernel = P100_SPEC.gemm_seconds(256, 512, 256) / V100_SPEC.gemm_seconds(
        256, 512, 256, tensor_core=True
    )
    big_kernel = P100_SPEC.gemm_seconds(4096, 4096, 4096) / V100_SPEC.gemm_seconds(
        4096, 4096, 4096, tensor_core=True
    )
    assert big_kernel > small_kernel
    # ... while at the system level both devices share the same PCIe and
    # reconstruct costs, so the end-to-end edge stays modest — exactly
    # the paper's point that Tensor Cores contribute percents (Fig. 15),
    # not multiples, to the whole pipeline.
    big_system_adv = results[("tesla-p100", 4096)] / results[("tesla-v100", 4096)]
    assert 1.0 <= big_system_adv < big_kernel
    # Pascal: tensor_core flag is a no-op in the cost model
    assert run(P100_SPEC, 512, tensor_core=True) == run(P100_SPEC, 512, tensor_core=False)
