"""Table 3 — online/total time and occupancy for both systems.

Paper: SecureML's online phase is >90% of total in almost every cell
(78.5-99.7%); after GPU acceleration ParSecureML's occupancy drops to
54.2% on average (19.0-92.0%), which is the direct evidence the
acceleration landed where the time was.  Shape claims: SecureML
occupancy high everywhere; ParSecureML occupancy strictly lower in
every cell; averages ordered the same way.
"""

from conftest import grid_cells
from repro.bench.reporting import format_table


def build(grid):
    rows = []
    for model, dataset in grid_cells():
        sml = grid.sml(model, dataset)
        par = grid.par(model, dataset)
        rows.append(
            {
                "Dataset": dataset,
                "Model": model,
                "SML online (s)": sml.online_s(),
                "SML total (s)": sml.total_s(),
                "SML occ (%)": 100 * sml.occupancy,
                "Par online (s)": par.online_s(),
                "Par total (s)": par.total_s(),
                "Par occ (%)": 100 * par.occupancy,
            }
        )
    return rows


def test_table3(grid, benchmark):
    rows = benchmark.pedantic(lambda: build(grid), rounds=1, iterations=1)
    print()
    print(format_table(
        rows,
        ["Dataset", "Model", "SML online (s)", "SML total (s)", "SML occ (%)",
         "Par online (s)", "Par total (s)", "Par occ (%)"],
        title="Table 3: time breakdown and online occupancy",
    ))
    for r in rows:
        assert r["SML occ (%)"] > 50.0, "SecureML is online-dominated (paper: 78.5-99.7%)"
        assert r["Par occ (%)"] < r["SML occ (%)"], (
            "GPU acceleration must reduce the online share"
        )
    sml_avg = sum(r["SML occ (%)"] for r in rows) / len(rows)
    par_avg = sum(r["Par occ (%)"] for r in rows) / len(rows)
    assert sml_avg > 75.0, "SecureML average occupancy stays high (paper: ~96%)"
    assert par_avg < sml_avg - 10.0, "acceleration visibly reduces occupancy (paper: ~54%)"
