"""Fig. 17 — speedup as a function of workload size (SYNTHETIC).

Paper: sweeping the SYNTHETIC workload (the number of 32x64 matrices
processed together) from 1 MB to 4 GB, the ParSecureML-over-SecureML
improvement grows with workload size — small workloads cannot utilise
the GPU (Section 7.6 insight 3).

We reproduce the paper's design: the workload is one batch of N
synthetic matrices, so growing N grows the GEMM's row dimension and
with it the GPU utilisation.  Shape claim: per-batch speedup is
monotonically non-decreasing in N, with material growth end to end.
"""

import numpy as np

from repro.bench.reporting import format_table
from repro.core.config import FrameworkConfig
from repro.core.context import SecureContext
from repro.core.models import SecureLinearRegression
from repro.core.training import SecureTrainer

FEATURES = 2048  # one 32x64 synthetic matrix per sample
ROW_SWEEP = [128, 512, 2048, 8192]


def marginal_speedup(n_rows: int) -> tuple[float, float]:
    """(workload_mb, speedup) for one batch of n_rows matrices."""
    rng = np.random.default_rng(0)
    x = rng.uniform(size=(2 * n_rows, FEATURES))
    y = rng.normal(size=(2 * n_rows, 10)) * 0.1
    totals = {}
    for name, cfg in (
        ("par", FrameworkConfig.parsecureml(activation_protocol="emulated")),
        ("sml", FrameworkConfig.secureml(activation_protocol="emulated")),
    ):
        ctx = SecureContext(cfg)
        model = SecureLinearRegression(ctx, FEATURES, n_out=10)
        rep = SecureTrainer(ctx, model, lr=0.03125, monitor_loss=False).train(
            x, y, epochs=1, batch_size=n_rows
        )
        # steady-state per-batch cost: marginal online + amortised sharing
        totals[name] = rep.marginal_online_s + rep.sharing_offline_s / rep.batches
    workload_mb = n_rows * FEATURES * 8 / 1e6
    return workload_mb, totals["sml"] / totals["par"]


def test_fig17(benchmark):
    series = benchmark.pedantic(
        lambda: [marginal_speedup(n) for n in ROW_SWEEP], rounds=1, iterations=1
    )
    print()
    rows = [
        {"workload (MB)": mb, "matrices": n, "speedup (x)": s}
        for (mb, s), n in zip(series, ROW_SWEEP)
    ]
    print(format_table(rows, ["workload (MB)", "matrices", "speedup (x)"],
                       title="Fig. 17: speedup vs workload size (SYNTHETIC)"))
    speedups = [s for _, s in series]
    assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:])), (
        "speedup must grow with workload size"
    )
    assert speedups[-1] > 1.5 * speedups[0], "the growth must be material"
