"""Wire codec regression guards (plain pytest, CI smoke).

Invariants of the framed codec + round coalescing on the Fig. 10 MLP
cell, checked against the committed ``BENCH_wire.json`` reference:

* framed accounting never changes how many messages cross the links —
  only their charged size (headers tallied separately);
* the coalesced path sends strictly fewer messages than baseline, and
  never more than the committed reference (the simulation is
  deterministic, so a count above the reference is a real regression);
* coalescing does not worsen the online makespan (fewer latency
  charges on the same byte volume);
* the frame-CRC payload checksum beats the historical
  pickle-then-CRC per frame in wall-clock.

Runs standalone:
``PYTHONPATH=src python -m pytest benchmarks/test_wire_regression.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.harness import run_wire_comparison
from repro.core.config import FrameworkConfig

N_BATCHES = 2
BENCH_REFERENCE = Path(__file__).resolve().parents[1] / "BENCH_wire.json"


@pytest.fixture(scope="module")
def comparison():
    cfg = FrameworkConfig.parsecureml(activation_protocol="emulated")
    return run_wire_comparison(
        "MLP", "MNIST", cfg, n_batches=N_BATCHES, batch_size=128, seed=0
    )


def _reference_messages(mode: str) -> int | None:
    if not BENCH_REFERENCE.exists():
        return None
    rows = json.loads(BENCH_REFERENCE.read_text())["rows"]
    for row in rows:
        if row.get("wire_mode") == mode and row.get("model") == "MLP":
            return int(row["comm_messages"])
    return None


def test_framed_mode_is_size_only(comparison):
    base = comparison.cell("baseline")
    framed = comparison.cell("framed")
    assert framed.comm_messages == base.comm_messages
    assert framed.coalesced_messages == 0
    assert framed.frame_overhead_bytes > 0
    # the framed charge is the baseline body plus exactly the headers
    assert framed.comm_bytes == base.comm_bytes + framed.frame_overhead_bytes


def test_coalescing_reduces_messages(comparison):
    base = comparison.cell("baseline")
    packed = comparison.cell("coalesced")
    assert packed.comm_messages < base.comm_messages, (
        f"coalesced path sent {packed.comm_messages} msgs, "
        f"baseline {base.comm_messages}"
    )
    assert packed.coalesced_messages > 0
    assert (
        packed.comm_messages
        == base.comm_messages - packed.coalesced_messages
    )


def test_coalesced_messages_no_worse_than_committed_reference(comparison):
    reference = _reference_messages("coalesced")
    if reference is None:
        pytest.skip("no committed BENCH_wire.json reference")
    packed = comparison.cell("coalesced")
    assert packed.comm_messages <= reference, (
        f"coalesced comm.messages regressed: {packed.comm_messages} > "
        f"committed reference {reference}"
    )


def test_coalescing_no_worse_makespan(comparison):
    base = comparison.cell("baseline")
    packed = comparison.cell("coalesced")
    assert packed.train_online_s <= base.train_online_s * (1 + 1e-9)
    assert packed.serve_online_s <= base.serve_online_s * (1 + 1e-9)


def test_frame_checksum_beats_pickle_checksum(comparison):
    assert comparison.checksum_frame_us < comparison.checksum_pickle_us, (
        f"frame CRC {comparison.checksum_frame_us:.0f}us should beat "
        f"pickle CRC {comparison.checksum_pickle_us:.0f}us"
    )
