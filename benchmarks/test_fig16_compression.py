"""Fig. 16 — communication saved by compressed transmission.

Paper: 22.9% average reduction in inter-server communication, from
transmitting CSR-coded deltas of slowly-changing streams (Eqs. 10-12).

Fidelity note (recorded in EXPERIMENTS.md): in an *exact-ring*
implementation, every training-time weight update carries the SecureML
local-truncation noise of +/-1 ulp, so iteration deltas of weights are
dense random +/-1 matrices and the delta test almost never fires during
active training.  Where the optimisation does fire — and where this
benchmark measures it — is every setting with *stable* operand streams:

* secure inference (the dominant deployment mode; weights fixed);
* transfer learning / fine-tuning with frozen layers;
* converged models being re-validated.

Shape claims: compression never inflates traffic; inference-style
workloads save a tens-of-percent fraction, matching the paper's 22.9%.
"""

import numpy as np

from repro.bench.reporting import format_table
from repro.core.config import FrameworkConfig
from repro.core.context import SecureContext
from repro.core.inference import secure_predict
from repro.core.models import SecureLogisticRegression, SecureMLP
from repro.core.training import SecureTrainer


def _ctx():
    return SecureContext.create(FrameworkConfig.parsecureml(activation_protocol="emulated"))


def _comm_bytes(ctx):
    """(raw, wire) inter-server bytes from the run's telemetry snapshot."""
    snap = ctx.telemetry.snapshot()
    return (
        int(snap.counter("comm.compression.raw_bytes")),
        int(snap.counter("comm.compression.wire_bytes")),
    )


def run_inference_case(name, model_fn, features, batches=6):
    ctx = _ctx()
    rng = np.random.default_rng(1)
    model = model_fn(ctx, features)
    x = rng.normal(size=(batches * 128, features)) * 0.5
    secure_predict(ctx, model, x, batch_size=128)
    return (name, *_comm_bytes(ctx))


def run_frozen_training_case():
    """Fine-tuning with a frozen first layer: its F-stream is constant."""
    ctx = _ctx()
    rng = np.random.default_rng(2)
    model = SecureMLP(ctx, 256, hidden=(128,), n_out=64)
    frozen = model.layers[0]
    frozen.apply_gradients = lambda lr: setattr(frozen, "_grad_w", None)  # freeze
    x = rng.normal(size=(512, 256)) * 0.5
    y = rng.normal(size=(512, 64)) * 0.1
    SecureTrainer(ctx, model, lr=0.03125, monitor_loss=False).train(
        x, y, epochs=2, batch_size=128
    )
    return ("MLP frozen-layer fine-tune", *_comm_bytes(ctx))


def run_active_training_case():
    ctx = _ctx()
    rng = np.random.default_rng(3)
    model = SecureMLP(ctx, 256, hidden=(128,), n_out=64)
    x = rng.normal(size=(512, 256)) * 0.5
    y = rng.normal(size=(512, 64)) * 0.1
    SecureTrainer(ctx, model, lr=0.03125, monitor_loss=False).train(
        x, y, epochs=2, batch_size=128
    )
    return ("MLP active training", *_comm_bytes(ctx))


def build_cases():
    return [
        run_inference_case(
            "MLP inference", lambda ctx, f: SecureMLP(ctx, f, hidden=(128, 64), n_out=10), 256
        ),
        run_inference_case(
            "logistic inference", lambda ctx, f: SecureLogisticRegression(ctx, f, n_out=64), 256
        ),
        run_frozen_training_case(),
        run_active_training_case(),
    ]


def test_fig16(benchmark):
    cases = benchmark.pedantic(build_cases, rounds=1, iterations=1)
    print()
    rows = []
    savings = {}
    for name, raw, wire in cases:
        s = 1.0 - wire / raw if raw else 0.0
        savings[name] = s
        rows.append({"workload": name, "raw MB": raw / 1e6, "wire MB": wire / 1e6,
                     "saved": f"{s:.1%}"})
    print(format_table(rows, ["workload", "raw MB", "wire MB", "saved"],
                       title="Fig. 16: compressed-transmission savings (paper avg 22.9%)"))
    assert all(s >= 0.0 for s in savings.values()), "compression must never inflate traffic"
    assert savings["MLP inference"] > 0.15, "stable weight streams must compress"
    assert savings["MLP frozen-layer fine-tune"] > savings["MLP active training"]
    stable = [s for n, s in savings.items() if n != "MLP active training"]
    assert sum(stable) / len(stable) > 0.10
