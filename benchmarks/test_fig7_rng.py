"""Fig. 7 — cuRAND on the GPU vs MT19937 on the CPU, by matrix dimension.

Paper: the CPU generator wins for small matrices; cuRAND only pays off
for large ones ("it brings performance benefits only when processing
large matrices") — which is why ParSecureML keeps random generation on
the CPU.  Shape claims: CPU faster at small n, GPU faster at large n, a
crossover exists in between.
"""

from repro.bench.reporting import format_table
from repro.simgpu.cost import V100_SPEC, XEON_E5_2670V3_SPEC

DIMS = [128, 256, 512, 1024, 2048, 4096, 8192, 16384]


def build_series():
    rows = []
    for n in DIMS:
        nbytes = n * n * 8
        cpu_s = XEON_E5_2670V3_SPEC.rng_seconds(nbytes, parallel=True)
        # GPU: cuRAND generator creation + generation + copying the
        # matrix back for the CPU-resident protocol steps.  The paper's
        # measurement pays generator setup per invocation (Fig. 7 is a
        # standalone generation benchmark), which is what pushes the
        # crossover to the thousands.
        gpu_s = (
            V100_SPEC.curand_seconds(nbytes, include_setup=True)
            + V100_SPEC.transfer_seconds(nbytes)
        )
        rows.append(
            {"dim n": n, "CPU MT19937 (s)": cpu_s, "GPU cuRAND (s)": gpu_s,
             "winner": "cpu" if cpu_s < gpu_s else "gpu"}
        )
    return rows


def test_fig7(benchmark):
    rows = benchmark.pedantic(build_series, rounds=1, iterations=1)
    print()
    print(format_table(rows, ["dim n", "CPU MT19937 (s)", "GPU cuRAND (s)", "winner"],
                       title="Fig. 7: random generation, CPU vs GPU (n x n matrices)"))
    winners = [r["winner"] for r in rows]
    assert winners[0] == "cpu"  # small matrices: CPU wins
    assert winners[-1] == "gpu"  # large matrices: GPU wins
    # exactly one crossover (monotone advantage)
    flips = sum(1 for a, b in zip(winners, winners[1:]) if a != b)
    assert flips == 1
