"""Table 1 — SecureML vs original (non-secure) CPU training on MNIST.

Paper: CNN 2.49x, MLP 1.80x, linear 1.93x, logistic 1.97x slower;
average ~2x.  Shape claims asserted: every slowdown is > 1x and < ~6x,
and the average lands near 2x.
"""

from conftest import grid_cells
from repro.bench.reporting import format_table, geomean

MODELS = ["CNN", "MLP", "linear", "logistic"]
PAPER = {"CNN": 2.49, "MLP": 1.80, "linear": 1.93, "logistic": 1.97}


def build_table(grid):
    rows = []
    for model in MODELS:
        sml = grid.sml(model, "MNIST")
        cpu = grid.plain_cpu(model, "MNIST")
        rows.append(
            {
                "Method": model,
                "Original (s)": cpu.total_s(),
                "SecureML (s)": sml.total_s(),
                "Slowdown (x)": sml.total_s() / cpu.total_s(),
                "Paper (x)": PAPER[model],
            }
        )
    return rows


def test_table1(grid, benchmark):
    rows = benchmark.pedantic(lambda: build_table(grid), rounds=1, iterations=1)
    print()
    print(
        format_table(
            rows,
            ["Method", "Original (s)", "SecureML (s)", "Slowdown (x)", "Paper (x)"],
            title="Table 1: SecureML slowdown over original CPU training (MNIST)",
        )
    )
    slowdowns = [r["Slowdown (x)"] for r in rows]
    # Shape: security costs real but single-digit overhead on the CPU.
    assert all(1.0 < s < 6.0 for s in slowdowns)
    assert 1.5 < geomean(slowdowns) < 4.0
