"""Ablation — the compression sparsity threshold (paper default 75%).

Section 4.4 compresses a delta only when >= 75% of its entries are
zero.  This sweep feeds the compressor a family of streams whose
iteration deltas have graded sparsities (50%..99.9% zeros) and measures
total savings as the threshold varies.

Shape claims: savings are non-increasing in the threshold; thresholds
at or below the delta's sparsity admit it and above exclude it; and the
CSR-size guard keeps even threshold 0 from ever inflating traffic.
"""

import numpy as np

from repro.bench.reporting import format_table
from repro.comm.compression import DeltaCompressor

THRESHOLDS = [0.0, 0.25, 0.5, 0.75, 0.9, 0.99]
DELTA_SPARSITIES = [0.50, 0.70, 0.80, 0.95, 0.999]
SHAPE = (256, 256)
ITERATIONS = 8


def stream_savings(threshold: float, rng: np.random.Generator) -> float:
    comp = DeltaCompressor(threshold)
    for s_idx, sparsity in enumerate(DELTA_SPARSITIES):
        base = rng.integers(0, 2**64, size=SHAPE, dtype=np.uint64)
        current = base
        comp.encode(f"stream{s_idx}", current)
        for _ in range(ITERATIONS):
            delta = rng.integers(0, 2**64, size=SHAPE, dtype=np.uint64)
            delta[rng.random(SHAPE) < sparsity] = np.uint64(0)
            with np.errstate(over="ignore"):
                current = current + delta
            comp.encode(f"stream{s_idx}", current)
    return comp.stats.savings_fraction


def test_threshold_sweep(benchmark):
    series = benchmark.pedantic(
        lambda: [(t, stream_savings(t, np.random.default_rng(7))) for t in THRESHOLDS],
        rounds=1,
        iterations=1,
    )
    print()
    rows = [{"threshold": t, "savings": f"{s:.1%}"} for t, s in series]
    print(format_table(rows, ["threshold", "savings"],
                       title="Ablation: compression sparsity threshold (paper: 0.75)"))
    savings = dict(series)
    values = [s for _, s in series]
    assert all(a >= b - 1e-9 for a, b in zip(values, values[1:])), (
        "stricter thresholds cannot save more"
    )
    # the paper's 0.75 keeps the high-sparsity streams (0.8, 0.95, 0.999)
    assert savings[0.75] > 0.15
    # pushing to 0.99 drops the 0.8/0.95 streams: a visible loss
    assert savings[0.99] < savings[0.75] - 0.05
    # and even threshold 0 never inflates traffic (CSR-size guard)
    assert savings[0.0] <= 1.0 and savings[0.0] >= savings[0.25] - 1e-9
