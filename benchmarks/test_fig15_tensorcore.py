"""Fig. 15 — benefit of running GEMM on Tensor Cores.

Paper: +3.11% average, smaller than the CPU optimisation, with the
largest gains where large GEMMs dominate GPU time (Section 7.3's third
observation, consistent with Fig. 8).  Shape claims: never hurts, the
average gain is a small fraction of total time, and GEMM-heavy cells
gain more than launch-bound ones.
"""

from conftest import grid_cells
from repro.bench.reporting import format_table


def build(grid):
    rows = []
    for model, dataset in grid_cells():
        with_tc = grid.par(model, dataset)
        without = grid.par(model, dataset, tensor_core=False)
        rows.append(
            {
                "benchmark": f"{dataset}/{model}",
                "improvement": without.total_s() / with_tc.total_s() - 1.0,
                "online_improvement": without.online_s() / with_tc.online_s() - 1.0,
            }
        )
    return rows


def test_fig15(grid, benchmark):
    rows = benchmark.pedantic(lambda: build(grid), rounds=1, iterations=1)
    print()
    printable = [
        {"benchmark": r["benchmark"], "Tensor-Core benefit": f"{r['improvement']:+.2%}"}
        for r in rows
    ]
    print(format_table(printable, ["benchmark", "Tensor-Core benefit"],
                       title="Fig. 15: Tensor-Core benefit (paper avg +3.1%)"))
    gains = [r["improvement"] for r in rows]
    assert all(g >= -1e-9 for g in gains), "Tensor Cores must never hurt"
    mean_gain = sum(gains) / len(gains)
    assert 0.0 <= mean_gain < 0.5, f"mean gain {mean_gain:.1%}: should be a small fraction"
    # the spread exists: some cells benefit clearly more than others
    assert max(gains) > 2 * max(min(gains), 1e-6) or max(gains) > 0.01
