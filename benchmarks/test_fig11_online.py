"""Fig. 11 — online-phase speedup of ParSecureML over SecureML.

Paper: average 64.5x, higher than the overall speedup (Fig. 10) because
the GPU acceleration lands in the online phase.  Shape claims: online
speedup > 1 everywhere and its geomean exceeds the overall geomean.
"""

from conftest import grid_cells
from repro.bench.reporting import format_speedup_series, geomean


def build(grid):
    labels, online, overall = [], [], []
    for model, dataset in grid_cells():
        par = grid.par(model, dataset)
        sml = grid.sml(model, dataset)
        labels.append(f"{dataset}/{model}")
        online.append(sml.online_s() / par.online_s())
        overall.append(sml.total_s() / par.total_s())
    return labels, online, overall


def test_fig11(grid, benchmark):
    labels, online, overall = benchmark.pedantic(lambda: build(grid), rounds=1, iterations=1)
    print()
    print(format_speedup_series(labels, online,
                                title="Fig. 11: online speedup (paper avg 64.5x, > overall)"))
    assert all(s > 1.0 for s in online)
    assert geomean(online) >= geomean(overall), (
        "online speedup must exceed overall: the GPU work is online"
    )
