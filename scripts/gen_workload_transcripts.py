"""Regenerate the workload reference transcripts.

The committed JSON files under ``tests/data/`` pin the wire behaviour of
the attention and recsys workloads on both protocol backends: an
inference conformance run must replay bit-identically against its pin
(``Transcript.diff`` empty — every message's blake2b payload digest,
size, ordering and routing).  Run from the repo root:

    PYTHONPATH=src python scripts/gen_workload_transcripts.py
"""

from repro.audit.conformance import ConformanceCase, run_conformance_case

MODELS = ("attention", "recsys")
BACKENDS = ("beaver2pc", "rep3")


def main() -> None:
    for model in MODELS:
        for backend in BACKENDS:
            case = ConformanceCase(model=model, axis="baseline", backend=backend)
            result = run_conformance_case(case, audit=True, capture_payloads=True)
            assert result.agreed, f"{model}/{backend} diverged from plain"
            t = result.transcript
            t.meta["artifact"] = f"{model} workload reference ({backend}, infer)"
            path = f"tests/data/{model}_{backend}_infer_transcript.json"
            t.dump(path)
            print(f"wrote {path}: {len(t)} messages, {t.total_bytes} bytes")


if __name__ == "__main__":
    main()
