"""Regenerate the beaver2pc reference transcript artifact.

The committed JSON under ``tests/data/`` pins the wire behaviour of the
default 2PC backend: a post-refactor run with ``backend="beaver2pc"``
must replay bit-identically against it (``Transcript.diff`` empty).
Run from the repo root:

    PYTHONPATH=src python scripts/gen_reference_transcript.py
"""

from repro.audit.conformance import ConformanceCase, run_conformance_case


def main() -> None:
    case = ConformanceCase(model="MLP", axis="baseline", train=True)
    result = run_conformance_case(case, audit=True, capture_payloads=True)
    t = result.transcript
    t.meta["artifact"] = "beaver2pc reference (pre protocol-backend refactor)"
    path = "tests/data/beaver2pc_mlp_train_transcript.json"
    t.dump(path)
    print(f"wrote {path}: {len(t)} messages, {t.total_bytes} bytes")


if __name__ == "__main__":
    main()
